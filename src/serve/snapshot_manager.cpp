#include "serve/snapshot_manager.h"

#include <cassert>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace_span.h"

namespace graphbig::serve {

namespace {

struct ServeSeries {
  obs::Counter published;
  obs::Counter refresh_incremental;
  obs::Counter refresh_full;
  obs::Counter reclaimed;
  obs::Gauge reader_pins;
};

ServeSeries& serve_series() {
  static ServeSeries* s = [] {
    auto& r = obs::MetricsRegistry::instance();
    return new ServeSeries{
        r.counter("serve.generations_published"),
        r.counter("serve.refresh_incremental"),
        r.counter("serve.refresh_full"),
        r.counter("serve.arenas_reclaimed"),
        r.gauge("serve.reader_pins"),
    };
  }();
  return *s;
}

}  // namespace

void SnapshotManager::Lease::release() {
  if (mgr_ == nullptr) return;
  mgr_->unpin(slot_);
  mgr_ = nullptr;
  snap_ = nullptr;
}

SnapshotManager::SnapshotManager(const graph::PropertyGraph& g,
                                 SnapshotManagerOptions opts)
    : opts_(opts) {
  if (opts_.slots < 2) opts_.slots = 2;
  if (opts_.pool_capacity < 1) opts_.pool_capacity = 1;
  slots_.reserve(opts_.slots);
  for (std::uint32_t i = 0; i < opts_.slots; ++i) {
    slots_.push_back(std::make_unique<GenSlot>());
  }
  // Generation 0. The spare is frozen second, so ITS base serial is the
  // live log generation: the first publish() pops it and delta-merges.
  auto first = std::make_unique<graph::GraphSnapshot>(
      graph::GraphSnapshot::freeze(g, opts_.layout));
  auto spare = std::make_unique<graph::GraphSnapshot>(
      graph::GraphSnapshot::freeze(g, opts_.layout));
  pool_.push_back(std::move(spare));
  GenSlot& slot0 = *slots_[0];
  slot0.snap = first.release();
  slot0.gen.store(0, std::memory_order_seq_cst);
  current_gen_.store(0, std::memory_order_seq_cst);
  stats_.published = 1;
  stats_.full = 1;  // gen 0 is a from-scratch freeze
  if (obs::enabled()) {
    ServeSeries& ss = serve_series();
    ss.published.inc();
    ss.refresh_full.inc();
  }
}

SnapshotManager::~SnapshotManager() {
  for (auto& slot_ptr : slots_) {
    GenSlot& slot = *slot_ptr;
    slot.gen.store(kNoGen, std::memory_order_seq_cst);
    while (slot.pins.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    delete slot.snap;
    slot.snap = nullptr;
  }
}

SnapshotManager::Lease SnapshotManager::acquire() {
  // Tagged with the caller's ambient trace id (when a request is in
  // scope) so a retry storm under publish pressure is attributable.
  obs::ObsSpan span("snapshot_pin");
  for (;;) {
    const std::uint64_t cur = current_gen_.load(std::memory_order_seq_cst);
    const std::uint32_t idx =
        static_cast<std::uint32_t>(cur % slots_.size());
    GenSlot& slot = *slots_[idx];
    slot.pins.fetch_add(1, std::memory_order_seq_cst);
    if (slot.gen.load(std::memory_order_seq_cst) == cur) {
      // Pin landed before any close of this slot: the writer's drain
      // cannot pass until we unpin, and the acquire-load of `gen` makes
      // the writer's pre-open `snap` store visible.
      return Lease(this, idx, slot.snap, cur);
    }
    // Slot was recycled under us (we raced a publish several generations
    // ahead); back out and retry against the new current.
    slot.pins.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void SnapshotManager::unpin(std::uint32_t slot) {
  // seq_cst fetch_sub is the release edge the writer's drain loop
  // acquires: every read through the lease happens-before the recycle.
  slots_[slot]->pins.fetch_sub(1, std::memory_order_seq_cst);
}

std::uint64_t SnapshotManager::live_pins() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) {
    total += slot->pins.load(std::memory_order_seq_cst);
  }
  return total;
}

void SnapshotManager::harvest(GenSlot& slot) {
  assert(slot.gen.load(std::memory_order_seq_cst) == kNoGen);
  assert(slot.pins.load(std::memory_order_seq_cst) == 0);
  if (slot.snap == nullptr) return;
  std::unique_ptr<graph::GraphSnapshot> retired(slot.snap);
  slot.snap = nullptr;
  ++stats_.reclaimed;
  if (obs::enabled()) serve_series().reclaimed.inc();
  if (pool_.size() < opts_.pool_capacity) {
    pool_.push_back(std::move(retired));
  }
  // else: freed here — past pool capacity the arena is simply released.
}

void SnapshotManager::drain(GenSlot& slot) {
  slot.gen.store(kNoGen, std::memory_order_seq_cst);
  if (slot.pins.load(std::memory_order_seq_cst) != 0) {
    ++stats_.publish_waits;
    while (slot.pins.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  }
  harvest(slot);
}

std::size_t SnapshotManager::reclaim_retired() {
  const std::uint64_t cur = current_gen_.load(std::memory_order_seq_cst);
  std::size_t harvested = 0;
  for (auto& slot_ptr : slots_) {
    GenSlot& slot = *slot_ptr;
    const std::uint64_t g = slot.gen.load(std::memory_order_seq_cst);
    if (g != kNoGen) {
      if (g >= cur) continue;  // current generation stays open
      slot.gen.store(kNoGen, std::memory_order_seq_cst);
    }
    if (slot.snap != nullptr &&
        slot.pins.load(std::memory_order_seq_cst) == 0) {
      harvest(slot);
      ++harvested;
    }
  }
  return harvested;
}

graph::RefreshStats SnapshotManager::publish(const graph::PropertyGraph& g) {
  const std::uint64_t next =
      current_gen_.load(std::memory_order_seq_cst) + 1;
  GenSlot& target = *slots_[next % slots_.size()];

  // W1+W2: close retired slots, harvest the drained ones.
  reclaim_retired();
  // W3: the target slot must be empty before reuse.
  drain(target);

  // W4: pooled retiree -> refresh (incremental when the journal covers
  // its base serial); dry pool -> fresh freeze.
  std::unique_ptr<graph::GraphSnapshot> snap;
  graph::RefreshStats stats;
  if (!pool_.empty()) {
    snap = std::move(pool_.front());
    pool_.pop_front();
    stats = snap->refresh(g, opts_.refresh);
  } else {
    snap = std::make_unique<graph::GraphSnapshot>(
        graph::GraphSnapshot::freeze(g, opts_.layout));
    stats.kind = graph::RefreshStats::Kind::kFullRebuild;
    stats.fallback_reason = "snapshot pool dry (fresh freeze)";
    stats.rows_total = snap->row_count();
    stats.rows_rewritten = snap->row_count();
    stats.edges_copied = snap->num_edges();
  }
  const bool incremental =
      stats.kind == graph::RefreshStats::Kind::kIncremental;
  incremental ? ++stats_.incremental : ++stats_.full;

  // W5: open the slot, then move the published pointer.
  target.snap = snap.release();
  target.gen.store(next, std::memory_order_seq_cst);
  current_gen_.store(next, std::memory_order_seq_cst);
  ++stats_.published;
  if (obs::enabled()) {
    ServeSeries& ss = serve_series();
    ss.published.inc();
    (incremental ? ss.refresh_incremental : ss.refresh_full).inc();
    ss.reader_pins.set(live_pins());
  }
  return stats;
}

}  // namespace graphbig::serve
