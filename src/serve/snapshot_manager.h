// Epoch-based MVCC snapshot manager: the serving layer's bridge between
// one mutating PropertyGraph and many concurrent analytic readers.
//
// The design splits compute from updates (BLADYG-style): a single writer
// thread applies churn batches to the dynamic graph and publishes frozen
// GraphSnapshot generations; reader threads pin a generation, run any
// number of traversals against its immutable CSR, and unpin. No
// shared_ptr, no per-edge synchronization — the whole protocol is three
// atomics per generation slot:
//
//   gen   — the generation number the slot currently serves, or kNoGen
//           when the slot is closed (retired, awaiting drain).
//   pins  — count of readers currently holding the slot.
//   snap  — the frozen snapshot, written by the writer strictly before
//           the slot opens and never touched again until it has drained.
//
// Reader protocol (acquire):
//   1. load current_gen
//   2. pins.fetch_add(1) on slot[current_gen % N]
//   3. validate slot.gen == current_gen — success means the pin landed
//      before the writer closed the slot, so the writer's drain wait
//      (step W3 below) cannot have passed: the arena is safe until the
//      matching unpin. On mismatch, unpin and retry.
//
// Writer protocol (publish):
//   W1. close every slot whose generation is older than current
//       (gen := kNoGen) — after this store, no new pin can validate.
//   W2. harvest closed slots whose pins have reached zero: the arena is
//       recycled into the refresh pool (or freed past capacity). The
//       release-fetch_sub in unpin / acquire-load here is the edge that
//       makes the reader's last access happen-before the recycle.
//   W3. the target slot (next_gen % N) is drained synchronously: close,
//       then spin until pins == 0, then harvest.
//   W4. produce the next snapshot — pop a pooled retiree and
//       GraphSnapshot::refresh it (incremental when the mutation-log
//       journal still covers its base serial, guarded full rebuild
//       otherwise), or freeze from scratch when the pool is dry.
//   W5. slot.snap := snapshot, then slot.gen := next_gen (release), then
//       current_gen := next_gen. New readers land on the new generation;
//       readers still pinning older ones are undisturbed.
//
// Invariants (the reclamation fuzz test's contract):
//   * an arena is never recycled or freed while any reader pins it;
//   * every retired arena is harvested once its last reader unpins (at
//     the latest on the next publish or reclaim_retired() call);
//   * generation numbers strictly increase, so a slot validated against
//     generation g can never be confused with its later tenants (no ABA).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "graph/property_graph.h"
#include "graph/snapshot.h"

namespace graphbig::serve {

struct SnapshotManagerOptions {
  /// Layout applied to published snapshots. Non-natural/compressed
  /// layouts force every publish onto the full-rebuild path (the layout
  /// stage has no incremental merge), so serving defaults to natural raw.
  graph::LayoutOptions layout;
  graph::RefreshOptions refresh;
  /// Generation table size (clamped to >= 2). Publishing generation k
  /// requires slot k % slots to have drained; more slots tolerate
  /// longer-lived leases without stalling the writer.
  std::uint32_t slots = 8;
  /// Retired snapshots kept for refresh reuse; beyond this they are
  /// freed. Pooled retirees lag the writer by a few generations, which
  /// the mutation log's bounded journal (kMaxHistory) is sized to cover.
  std::uint32_t pool_capacity = 4;
};

/// Writer-side lifetime counters. Written only by the publishing thread;
/// read them from that thread or after it has quiesced.
struct SnapshotManagerStats {
  std::uint64_t published = 0;    // generations made current (gen 0 included)
  std::uint64_t incremental = 0;  // publishes served by a delta-merge
  std::uint64_t full = 0;         // publishes that rebuilt (or fresh froze)
  std::uint64_t reclaimed = 0;    // retired arenas harvested (pooled or freed)
  std::uint64_t publish_waits = 0;  // publishes that had to spin on a pinned slot
};

class SnapshotManager {
 public:
  static constexpr std::uint64_t kNoGen = ~std::uint64_t{0};

  /// RAII pin on one published generation. Movable, not copyable; the
  /// snapshot pointer is valid exactly as long as the lease lives.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept { move_from(o); }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        move_from(o);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    bool valid() const { return mgr_ != nullptr; }
    const graph::GraphSnapshot* snapshot() const { return snap_; }
    std::uint64_t generation() const { return gen_; }

    /// Unpins early (idempotent).
    void release();

   private:
    friend class SnapshotManager;
    Lease(SnapshotManager* mgr, std::uint32_t slot,
          const graph::GraphSnapshot* snap, std::uint64_t gen)
        : mgr_(mgr), slot_(slot), snap_(snap), gen_(gen) {}
    void move_from(Lease& o) {
      mgr_ = o.mgr_;
      slot_ = o.slot_;
      snap_ = o.snap_;
      gen_ = o.gen_;
      o.mgr_ = nullptr;
      o.snap_ = nullptr;
    }

    SnapshotManager* mgr_ = nullptr;
    std::uint32_t slot_ = 0;
    const graph::GraphSnapshot* snap_ = nullptr;
    std::uint64_t gen_ = 0;
  };

  /// Freezes generation 0 from `g` and publishes it, plus one spare
  /// snapshot seeded into the refresh pool so the first publish() can
  /// already take the incremental path.
  explicit SnapshotManager(const graph::PropertyGraph& g,
                           SnapshotManagerOptions opts = {});

  /// Drains and frees every slot. All leases must be released and the
  /// writer quiesced before destruction.
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // ---- reader side (any thread) ----

  /// Pins the current generation. Never fails; retries across concurrent
  /// publishes until a pin validates.
  Lease acquire();

  std::uint64_t current_generation() const {
    return current_gen_.load(std::memory_order_seq_cst);
  }

  /// Sum of pins across all slots (racy snapshot; exact once readers
  /// quiesce).
  std::uint64_t live_pins() const;

  // ---- writer side (one thread) ----

  /// Publishes the next generation from the graph's current state. Stats
  /// of the refresh/freeze that produced it are returned by value.
  graph::RefreshStats publish(const graph::PropertyGraph& g);

  /// Closes and harvests every retired slot whose readers have drained
  /// (publish does this too; tests and shutdown call it directly).
  /// Returns the number of arenas harvested.
  std::size_t reclaim_retired();

  const SnapshotManagerStats& stats() const { return stats_; }
  const SnapshotManagerOptions& options() const { return opts_; }

 private:
  struct alignas(64) GenSlot {
    std::atomic<std::uint64_t> gen{kNoGen};
    std::atomic<std::uint64_t> pins{0};
    /// Owned by the slot when non-null. Plain pointer by design: written
    /// by the writer before the slot opens (release-published via `gen`)
    /// and recycled only after the drain edge (see file comment).
    graph::GraphSnapshot* snap = nullptr;
  };

  friend class Lease;

  void unpin(std::uint32_t slot);
  /// Recycles a closed, drained slot's snapshot into the pool (or frees
  /// it past capacity).
  void harvest(GenSlot& slot);
  /// Blocks until `slot` is closed, drained, and harvested.
  void drain(GenSlot& slot);

  SnapshotManagerOptions opts_;
  std::vector<std::unique_ptr<GenSlot>> slots_;
  std::atomic<std::uint64_t> current_gen_{0};
  std::deque<std::unique_ptr<graph::GraphSnapshot>> pool_;
  SnapshotManagerStats stats_;
};

}  // namespace graphbig::serve
