#include "serve/query_frontend.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "platform/bitset.h"
#include "workloads/workload.h"

namespace graphbig::serve {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shared bucket bounds for the serve latency-ish histograms (50us ..
/// 1.6s, x2 per bucket) — also the windowed histogram's bounds so the
/// lifetime and rolling quantiles are directly comparable.
std::vector<std::uint64_t> latency_bounds() {
  return {50,    100,   200,    400,    800,    1600,   3200,    6400,
          12800, 25600, 51200, 102400, 204800, 409600, 819200, 1638400};
}

struct FrontendSeries {
  obs::Counter completed;
  obs::Counter shed;
  obs::Histogram latency_us;
  obs::Histogram queue_us;
  obs::Histogram exec_us;
  obs::Gauge queue_depth;
};

FrontendSeries& frontend_series() {
  static FrontendSeries* s = [] {
    auto& r = obs::MetricsRegistry::instance();
    return new FrontendSeries{
        r.counter("serve.queries_completed"),
        r.counter("serve.queries_shed"),
        r.histogram("serve.query_latency_us", latency_bounds()),
        r.histogram("serve.queue_us", latency_bounds()),
        r.histogram("serve.exec_us", latency_bounds()),
        r.gauge("serve.queue_depth"),
    };
  }();
  return *s;
}

/// k-hop neighborhood: BFS truncated after `k` supersteps. Same engine,
/// same visited discipline, and the same checksum shape as the BFS
/// workload, but bounded expansion — the "friends of friends" request.
workloads::RunResult khop_neighborhood(const graph::GraphView& g,
                                       graph::SlotIndex root_slot, int k,
                                       engine::TraversalOptions opts) {
  workloads::RunResult result;
  platform::AtomicBitset visited(g.slot_count());
  visited.test_and_set(root_slot);

  engine::FrontierEngine eng(g, nullptr, opts, nullptr);
  eng.activate(root_slot);

  int depth = 0;
  std::uint64_t vertices = 1;
  std::uint64_t edges = 0;
  std::uint64_t depth_sum = 0;
  while (!eng.done() && depth < k) {
    ++depth;
    auto push = [&](graph::SlotIndex u, engine::StepCtx& sc) {
      g.for_each_out(u, [&](graph::SlotIndex t, double) {
        ++sc.edges;
        if (visited.test_and_set(t)) sc.emit(t);
      });
    };
    const engine::StepResult r = eng.step(push);
    edges += r.edges;
    vertices += r.activated;
    depth_sum += static_cast<std::uint64_t>(depth) * r.activated;
  }
  result.vertices_processed = vertices;
  result.edges_processed = edges;
  result.checksum = vertices * 1000003u + depth_sum;
  return result;
}

}  // namespace

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kBfs:
      return "BFS";
    case QueryKind::kKHop:
      return "kHop";
    case QueryKind::kSPath:
      return "SPath";
    case QueryKind::kDCentr:
      return "DCentr";
  }
  return "??";
}

QueryRecord QueryFrontend::execute(const QueryRequest& req,
                                   const graph::GraphSnapshot& snap,
                                   std::uint64_t generation,
                                   const engine::TraversalOptions& traversal) {
  QueryRecord rec;
  rec.id = req.id;
  rec.kind = req.kind;
  rec.root = req.root;
  rec.khop = req.khop;
  rec.generation = generation;

  // Private per-query algorithm state: many requests share this snapshot.
  graph::PropertyColumns columns(snap.row_count());
  workloads::RunContext ctx;
  ctx.snapshot = &snap;
  ctx.columns = &columns;
  ctx.pool = nullptr;  // sequential per request
  ctx.root = req.root;
  ctx.traversal = traversal;

  workloads::RunResult result;
  switch (req.kind) {
    case QueryKind::kBfs:
      result = workloads::bfs().run(ctx);
      break;
    case QueryKind::kKHop: {
      const graph::SlotIndex root_slot = snap.slot_of(req.root);
      if (root_slot != graph::kInvalidSlot) {
        result = khop_neighborhood(ctx.view(), root_slot, req.khop,
                                   traversal);
      }
      break;
    }
    case QueryKind::kSPath:
      result = workloads::spath().run(ctx);
      break;
    case QueryKind::kDCentr:
      result = workloads::dcentr().run(ctx);
      break;
  }
  rec.checksum = result.checksum;
  rec.vertices = result.vertices_processed;
  return rec;
}

QueryFrontend::QueryFrontend(SnapshotManager& mgr, QueryFrontendOptions opts)
    : mgr_(mgr),
      opts_(opts),
      windowed_latency_(latency_bounds(),
                        (opts.window_slot_ms == 0 ? 1 : opts.window_slot_ms) *
                            1000000ull,
                        opts.window_slots == 0 ? 1 : opts.window_slots),
      slo_(opts.slo_threshold_us, opts.slo_target,
           (opts.window_slot_ms == 0 ? 1 : opts.window_slot_ms) * 1000000ull,
           opts.window_slots == 0 ? 1 : opts.window_slots) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.queue_capacity < 1) opts_.queue_capacity = 1;
  worker_records_.resize(static_cast<std::size_t>(opts_.workers));
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

QueryFrontend::~QueryFrontend() { shutdown(); }

bool QueryFrontend::submit(QueryRequest req) {
  // The span + flow_start open this request's trace arc on the submitting
  // thread; the worker that dequeues it continues (flow_step) and closes
  // (flow_end) the arc, so Perfetto draws admission->pin->exec as one
  // connected journey across threads.
  obs::ObsSpan span("serve_submit", req.id);
  req.submit_ns = now_ns();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= opts_.queue_capacity) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) frontend_series().shed.inc();
      return false;
    }
    queue_.push_back(req);
    depth = queue_.size();
  }
  // Only admitted requests open a flow (shed requests would leave a
  // dangling arrow with no end).
  obs::flow_start("request", req.id + 1);
  if (obs::enabled()) frontend_series().queue_depth.set(depth);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return true;
}

void QueryFrontend::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && joined_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (!joined_) {
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    joined_ = true;
  }
}

QueryFrontendStats QueryFrontend::stats() const {
  QueryFrontendStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  return s;
}

std::size_t QueryFrontend::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

obs::HistogramSnapshot QueryFrontend::windowed_latency() const {
  return windowed_latency_.snapshot();
}

obs::SloTracker::Snapshot QueryFrontend::slo() const {
  return slo_.snapshot();
}

std::vector<QueryRecord> QueryFrontend::take_records() {
  std::vector<QueryRecord> all;
  for (auto& per_worker : worker_records_) {
    all.insert(all.end(), per_worker.begin(), per_worker.end());
    per_worker.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.id < b.id;
            });
  return all;
}

void QueryFrontend::worker_loop(int worker_index) {
  std::vector<QueryRecord>& records =
      worker_records_[static_cast<std::size_t>(worker_index)];
  for (;;) {
    QueryRequest req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and drained
      req = queue_.front();
      queue_.pop_front();
    }

    // Ambient trace id for this request: every span the worker (and the
    // engine it calls into) records until completion is tagged with it.
    // Request id + 1 keeps id 0 meaning "no request in scope".
    obs::ScopedTrace trace(req.id + 1);
    obs::ObsSpan span("serve_query", req.id);
    obs::flow_step("request", req.id + 1);
    const std::uint64_t dequeue_ns = now_ns();

    // Pin the current generation for exactly this request's lifetime.
    SnapshotManager::Lease lease = [&] {
      obs::ObsSpan pin_span("lease_pin");
      return mgr_.acquire();
    }();
    const std::uint64_t pin_ns = now_ns();

    QueryRecord rec;
    {
      obs::ObsSpan exec_span("execute");
      rec = execute(req, *lease.snapshot(), lease.generation(),
                    opts_.traversal);
    }
    lease.release();
    const std::uint64_t exec_ns = now_ns();

    obs::ObsSpan report_span("report");
    const std::uint64_t submit_ns =
        req.submit_ns != 0 ? req.submit_ns : dequeue_ns;
    rec.queue_us = (dequeue_ns - submit_ns) / 1000;
    rec.pin_us = (pin_ns - dequeue_ns) / 1000;
    rec.exec_us = (exec_ns - pin_ns) / 1000;
    // Publish telemetry (the report phase), then stamp its own cost and
    // the end-to-end sum so latency_us covers every phase.
    completed_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t provisional_latency_us = (exec_ns - submit_ns) / 1000;
    windowed_latency_.record(provisional_latency_us);
    slo_.record(provisional_latency_us);
    if (obs::enabled()) {
      FrontendSeries& fs = frontend_series();
      fs.completed.inc();
      fs.latency_us.observe(provisional_latency_us);
      fs.queue_us.observe(rec.queue_us);
      fs.exec_us.observe(rec.exec_us);
      std::size_t depth = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        depth = queue_.size();
      }
      fs.queue_depth.set(depth);
    }
    const std::uint64_t report_ns = now_ns();
    rec.report_us = (report_ns - exec_ns) / 1000;
    rec.latency_us = (report_ns - submit_ns) / 1000;
    if (opts_.record) records.push_back(rec);
    obs::flow_end("request", req.id + 1);
  }
}

}  // namespace graphbig::serve
