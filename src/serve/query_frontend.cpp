#include "serve/query_frontend.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "platform/bitset.h"
#include "workloads/workload.h"

namespace graphbig::serve {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct FrontendSeries {
  obs::Counter completed;
  obs::Counter shed;
  obs::Histogram latency_us;
};

FrontendSeries& frontend_series() {
  static FrontendSeries* s = [] {
    auto& r = obs::MetricsRegistry::instance();
    return new FrontendSeries{
        r.counter("serve.queries_completed"),
        r.counter("serve.queries_shed"),
        r.histogram("serve.query_latency_us",
                    {50, 100, 200, 400, 800, 1600, 3200, 6400, 12800,
                     25600, 51200, 102400, 204800, 409600, 819200,
                     1638400}),
    };
  }();
  return *s;
}

/// k-hop neighborhood: BFS truncated after `k` supersteps. Same engine,
/// same visited discipline, and the same checksum shape as the BFS
/// workload, but bounded expansion — the "friends of friends" request.
workloads::RunResult khop_neighborhood(const graph::GraphView& g,
                                       graph::SlotIndex root_slot, int k,
                                       engine::TraversalOptions opts) {
  workloads::RunResult result;
  platform::AtomicBitset visited(g.slot_count());
  visited.test_and_set(root_slot);

  engine::FrontierEngine eng(g, nullptr, opts, nullptr);
  eng.activate(root_slot);

  int depth = 0;
  std::uint64_t vertices = 1;
  std::uint64_t edges = 0;
  std::uint64_t depth_sum = 0;
  while (!eng.done() && depth < k) {
    ++depth;
    auto push = [&](graph::SlotIndex u, engine::StepCtx& sc) {
      g.for_each_out(u, [&](graph::SlotIndex t, double) {
        ++sc.edges;
        if (visited.test_and_set(t)) sc.emit(t);
      });
    };
    const engine::StepResult r = eng.step(push);
    edges += r.edges;
    vertices += r.activated;
    depth_sum += static_cast<std::uint64_t>(depth) * r.activated;
  }
  result.vertices_processed = vertices;
  result.edges_processed = edges;
  result.checksum = vertices * 1000003u + depth_sum;
  return result;
}

}  // namespace

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kBfs:
      return "BFS";
    case QueryKind::kKHop:
      return "kHop";
    case QueryKind::kSPath:
      return "SPath";
    case QueryKind::kDCentr:
      return "DCentr";
  }
  return "??";
}

QueryRecord QueryFrontend::execute(const QueryRequest& req,
                                   const graph::GraphSnapshot& snap,
                                   std::uint64_t generation,
                                   const engine::TraversalOptions& traversal) {
  QueryRecord rec;
  rec.id = req.id;
  rec.kind = req.kind;
  rec.root = req.root;
  rec.khop = req.khop;
  rec.generation = generation;

  // Private per-query algorithm state: many requests share this snapshot.
  graph::PropertyColumns columns(snap.row_count());
  workloads::RunContext ctx;
  ctx.snapshot = &snap;
  ctx.columns = &columns;
  ctx.pool = nullptr;  // sequential per request
  ctx.root = req.root;
  ctx.traversal = traversal;

  workloads::RunResult result;
  switch (req.kind) {
    case QueryKind::kBfs:
      result = workloads::bfs().run(ctx);
      break;
    case QueryKind::kKHop: {
      const graph::SlotIndex root_slot = snap.slot_of(req.root);
      if (root_slot != graph::kInvalidSlot) {
        result = khop_neighborhood(ctx.view(), root_slot, req.khop,
                                   traversal);
      }
      break;
    }
    case QueryKind::kSPath:
      result = workloads::spath().run(ctx);
      break;
    case QueryKind::kDCentr:
      result = workloads::dcentr().run(ctx);
      break;
  }
  rec.checksum = result.checksum;
  rec.vertices = result.vertices_processed;
  return rec;
}

QueryFrontend::QueryFrontend(SnapshotManager& mgr, QueryFrontendOptions opts)
    : mgr_(mgr), opts_(opts) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.queue_capacity < 1) opts_.queue_capacity = 1;
  worker_records_.resize(static_cast<std::size_t>(opts_.workers));
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

QueryFrontend::~QueryFrontend() { shutdown(); }

bool QueryFrontend::submit(QueryRequest req) {
  req.submit_ns = now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= opts_.queue_capacity) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) frontend_series().shed.inc();
      return false;
    }
    queue_.push_back(req);
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return true;
}

void QueryFrontend::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && joined_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (!joined_) {
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    joined_ = true;
  }
}

QueryFrontendStats QueryFrontend::stats() const {
  QueryFrontendStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  return s;
}

std::vector<QueryRecord> QueryFrontend::take_records() {
  std::vector<QueryRecord> all;
  for (auto& per_worker : worker_records_) {
    all.insert(all.end(), per_worker.begin(), per_worker.end());
    per_worker.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.id < b.id;
            });
  return all;
}

void QueryFrontend::worker_loop(int worker_index) {
  std::vector<QueryRecord>& records =
      worker_records_[static_cast<std::size_t>(worker_index)];
  for (;;) {
    QueryRequest req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and drained
      req = queue_.front();
      queue_.pop_front();
    }

    obs::ObsSpan span("serve_query");
    const std::uint64_t start_ns = now_ns();
    // Pin the current generation for exactly this request's lifetime.
    SnapshotManager::Lease lease = mgr_.acquire();
    QueryRecord rec = execute(req, *lease.snapshot(), lease.generation(),
                              opts_.traversal);
    lease.release();
    const std::uint64_t end_ns = now_ns();

    rec.exec_us = (end_ns - start_ns) / 1000;
    rec.latency_us =
        (end_ns - (req.submit_ns != 0 ? req.submit_ns : start_ns)) / 1000;
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      FrontendSeries& fs = frontend_series();
      fs.completed.inc();
      fs.latency_us.observe(rec.latency_us);
    }
    if (opts_.record) records.push_back(rec);
  }
}

}  // namespace graphbig::serve
