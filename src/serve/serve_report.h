// graphbig.serve.v1: the structured JSON report of one serving run —
// offered/admitted/shed/completed load, throughput, latency quantiles
// (p50/p99/p999 via obs::HistogramSnapshot::value_at_quantile), publish
// and reclamation counts, per-kind checksum digests, and the optional
// quiesced-replay verification verdict. Written by tools/graphbig_serve.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace graphbig::serve {

struct ServeReport {
  std::string dataset;
  std::string scale;

  // Configuration.
  int workers = 0;
  std::uint64_t queue_capacity = 0;
  double arrival_rate_qps = 0.0;
  std::uint64_t target_queries = 0;
  std::uint64_t query_seed = 0;
  int khop = 2;
  std::uint32_t slots = 0;
  std::uint32_t pool_capacity = 0;
  std::uint64_t churn_seed = 0;
  std::uint64_t churn_ops = 0;
  double churn_interval_ms = 0.0;

  // Load outcome.
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  double elapsed_s = 0.0;
  double throughput_qps = 0.0;

  // Latency (microseconds). Quantiles are conservative bucket upper
  // bounds from the serve.query_latency_us histogram.
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  double mean_us = 0.0;
  std::uint64_t max_us = 0;

  /// Per-phase quantiles (schema-additive in graphbig.serve.v1): the
  /// latency split into admission-queue wait and execution.
  struct PhaseQuantiles {
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    std::uint64_t max = 0;
  };
  PhaseQuantiles queue_us;
  PhaseQuantiles exec_us;

  /// Rolling-window view at run end (schema-additive): quantiles over the
  /// last window_s seconds only, vs the lifetime numbers above.
  double window_s = 0.0;
  std::uint64_t window_count = 0;
  std::uint64_t window_p50_us = 0;
  std::uint64_t window_p99_us = 0;
  std::uint64_t window_p999_us = 0;

  /// SLO outcome (schema-additive).
  std::uint64_t slo_threshold_us = 0;
  double slo_target = 0.0;
  std::uint64_t slo_good = 0;
  std::uint64_t slo_bad = 0;
  double slo_burn_rate = 0.0;

  // Snapshot generations under churn.
  std::uint64_t generations_published = 0;
  std::uint64_t refresh_incremental = 0;
  std::uint64_t refresh_full = 0;
  std::uint64_t arenas_reclaimed = 0;
  std::uint64_t publish_waits = 0;
  std::uint64_t final_generation = 0;
  std::uint64_t churn_batches_applied = 0;
  std::uint64_t churn_ops_applied = 0;

  /// Per query kind: completed count and an order-independent digest
  /// (XOR over query checksums) — the quick cross-run comparison handle.
  struct KindDigest {
    std::string kind;
    std::uint64_t count = 0;
    std::uint64_t checksum_xor = 0;
  };
  std::vector<KindDigest> per_kind;

  // Quiesced-replay verification (--verify).
  bool verified = false;
  std::uint64_t verify_checked = 0;
  std::uint64_t verify_mismatches = 0;

  /// Serializes the report; embeds `metrics` under "metrics" when
  /// non-null.
  void write_json(std::ostream& os, const obs::MetricsSnapshot* metrics) const;

  /// write_json with a fresh registry snapshot embedded.
  std::string to_json() const;
};

}  // namespace graphbig::serve
