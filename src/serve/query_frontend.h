// QueryFrontend: bounded-admission mixed analytic query execution against
// pinned snapshot generations.
//
// Worker threads pull requests from a bounded queue, pin the current
// generation through the SnapshotManager, and run the query on the frozen
// snapshot via the existing GraphView/FrontierEngine path — sequentially
// per request (request-level parallelism comes from the worker count, the
// "millions of users" shape, rather than intra-query fan-out). Each query
// brings its own PropertyColumns, so any number of concurrent requests can
// share one immutable snapshot without racing on algorithm state.
//
// Admission is load-shedding, not blocking: submit() on a full queue
// returns false and bumps the shed counter, which is what keeps an
// open-loop arrival process from building an unbounded backlog when
// offered load exceeds capacity.
//
// Every completed query is recorded (kind, root, generation it executed
// against, checksum, latency). The record is the verification surface:
// replaying the recorded churn batches to the same generation on a twin
// graph and re-running the recorded queries quiesced must reproduce every
// checksum bit-identically (execute() is the single code path both sides
// use).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/frontier_engine.h"
#include "obs/windowed.h"
#include "serve/snapshot_manager.h"

namespace graphbig::serve {

/// The mixed request stream's four analytic shapes (ISSUE/ROADMAP:
/// BFS-from-X, k-hop neighborhood, single-source shortest path, degree
/// centrality).
enum class QueryKind : std::uint8_t { kBfs, kKHop, kSPath, kDCentr };

inline constexpr std::size_t kQueryKinds = 4;

const char* to_string(QueryKind kind);

struct QueryRequest {
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::kBfs;
  graph::VertexId root = 0;
  /// Hop bound for kKHop; ignored by the other kinds.
  int khop = 2;
  /// Arrival timestamp, stamped by submit() (steady-clock ns).
  std::uint64_t submit_ns = 0;
};

/// One completed query: what ran, against which generation, and what it
/// produced. Checksums are deterministic functions of (kind, root, khop,
/// snapshot contents) — the replay-verification contract.
struct QueryRecord {
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::kBfs;
  graph::VertexId root = 0;
  int khop = 2;
  std::uint64_t generation = 0;
  std::uint64_t checksum = 0;
  std::uint64_t vertices = 0;  // vertices the query touched
  /// Per-phase timings. latency_us is submit -> completion and equals
  /// queue_us + pin_us + exec_us + report_us up to truncation — kept as
  /// the compatibility sum; the phases are the attribution surface.
  std::uint64_t latency_us = 0;  // submit -> completion
  std::uint64_t queue_us = 0;    // admission queue wait (submit -> dequeue)
  std::uint64_t pin_us = 0;      // generation lease pin
  std::uint64_t exec_us = 0;     // query execution only
  std::uint64_t report_us = 0;   // record + telemetry publication
};

struct QueryFrontendOptions {
  int workers = 4;
  std::size_t queue_capacity = 256;
  /// Engine knobs for per-query traversal (queries run single-threaded,
  /// so stealing never engages; direction still matters).
  engine::TraversalOptions traversal;
  /// Keep per-query records (the verification/report surface). Off drops
  /// them after metrics are recorded.
  bool record = true;
  /// Rolling-window telemetry geometry: the windowed latency histogram
  /// and the SLO ring cover window_slots * window_slot_ms milliseconds.
  std::uint64_t window_slot_ms = 1000;
  std::size_t window_slots = 10;
  /// SLO objective: slo_target of requests complete within
  /// slo_threshold_us (burn rate is measured against 1 - slo_target).
  std::uint64_t slo_threshold_us = 100000;
  double slo_target = 0.99;
};

/// Live counters (atomics — readable from any thread at any time).
struct QueryFrontendStats {
  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
};

class QueryFrontend {
 public:
  QueryFrontend(SnapshotManager& mgr, QueryFrontendOptions opts = {});
  ~QueryFrontend();

  QueryFrontend(const QueryFrontend&) = delete;
  QueryFrontend& operator=(const QueryFrontend&) = delete;

  /// Admits a request; false when the queue is full (shed) or the
  /// frontend has shut down.
  bool submit(QueryRequest req);

  /// Stops admission, drains every queued request, joins the workers.
  /// Idempotent.
  void shutdown();

  QueryFrontendStats stats() const;

  /// Requests currently waiting for a worker.
  std::size_t queue_depth() const;

  /// Rolling-window latency histogram (last window_slots * window_slot_ms
  /// ms); readable live from any thread.
  obs::HistogramSnapshot windowed_latency() const;

  /// Live SLO state (lifetime + windowed good/bad, burn rate).
  obs::SloTracker::Snapshot slo() const;

  /// Completed-query records in id order. Call after shutdown().
  std::vector<QueryRecord> take_records();

  /// Runs one query against a snapshot — THE execution path, used by the
  /// workers and by quiesced verification replays alike (identical code =>
  /// identical checksums). Latency fields are left zero.
  static QueryRecord execute(const QueryRequest& req,
                             const graph::GraphSnapshot& snap,
                             std::uint64_t generation,
                             const engine::TraversalOptions& traversal);

 private:
  void worker_loop(int worker_index);

  SnapshotManager& mgr_;
  QueryFrontendOptions opts_;

  obs::WindowedHistogram windowed_latency_;
  obs::SloTracker slo_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueryRequest> queue_;
  bool stopping_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> completed_{0};

  std::vector<std::vector<QueryRecord>> worker_records_;
  std::vector<std::thread> workers_;
  bool joined_ = false;
};

}  // namespace graphbig::serve
