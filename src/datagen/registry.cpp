#include "datagen/registry.h"

#include <stdexcept>

#include "datagen/generators.h"

namespace graphbig::datagen {

const std::vector<DatasetInfo>& all_datasets() {
  static const std::vector<DatasetInfo> datasets = {
      {DatasetId::kTwitter, "twitter",
       "Twitter graph (sampled): twit/retwit interactions", 1},
      {DatasetId::kKnowledge, "knowledge",
       "IBM Knowledge Repo: user/document access bipartite graph", 2},
      {DatasetId::kWatson, "watson",
       "IBM Watson Gene graph: gene/chemical/drug relations", 3},
      {DatasetId::kRoadNet, "roadnet",
       "CA road network: intersections and road segments", 4},
      {DatasetId::kLdbc, "ldbc",
       "LDBC synthetic social network graph", 0},
  };
  return datasets;
}

const DatasetInfo& dataset_info(DatasetId id) {
  for (const auto& d : all_datasets()) {
    if (d.id == id) return d;
  }
  throw std::out_of_range("unknown dataset id");
}

DatasetId dataset_by_name(const std::string& name) {
  for (const auto& d : all_datasets()) {
    if (d.name == name) return d.id;
  }
  throw std::out_of_range("unknown dataset name: " + name);
}

namespace {

// Scale factors relative to the "Small" base configuration. The ratios
// between datasets follow Table 7 (twitter largest, knowledge smallest).
int scale_shift(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return 4;  // 16x smaller than Small
    case Scale::kSmall:
      return 0;
    case Scale::kMedium:
      return -2;  // 4x larger than Small
  }
  return 0;
}

}  // namespace

EdgeList generate_dataset(DatasetId id, Scale scale) {
  const int shift = scale_shift(scale);
  switch (id) {
    case DatasetId::kTwitter: {
      // Table 7: 11M vertices / 85M edges (sampled). Small scale: 2^15
      // vertices, edge factor ~8 -- same V:E ratio and heavy tail.
      RmatConfig cfg;
      cfg.scale = 15 - shift / 2;
      cfg.edge_factor = 8;
      cfg.seed = 101;
      return generate_rmat(cfg);
    }
    case DatasetId::kKnowledge: {
      // Table 7: 154K vertices / 1.72M edges, bipartite, E/V ~ 11.
      BipartiteConfig cfg;
      cfg.num_users = std::uint64_t{1} << (14 - shift);
      cfg.num_docs = std::uint64_t{1} << (12 - shift);
      cfg.avg_accesses_per_user = 12.0;
      cfg.seed = 103;
      return generate_bipartite(cfg);
    }
    case DatasetId::kWatson: {
      // Table 7: 2M vertices / 12.2M edges, E/V ~ 6, modular topology.
      GeneConfig cfg;
      cfg.num_entities = std::uint64_t{1} << (15 - shift);
      cfg.module_size = 24;
      cfg.seed = 107;
      return generate_gene(cfg);
    }
    case DatasetId::kRoadNet: {
      // Table 7: 1.9M vertices / 2.8M edges, E/V ~ 1.5 undirected.
      RoadConfig cfg;
      const std::uint64_t side = std::uint64_t{192} >> (shift / 2);
      cfg.rows = side;
      cfg.cols = side;
      cfg.seed = 109;
      return generate_road(cfg);
    }
    case DatasetId::kLdbc: {
      // Table 7: 1M vertices / 28.8M edges, E/V ~ 29. We keep E/V ~ 16 at
      // Small scale to bound trace-replay time; the social-network shape is
      // what the experiments depend on.
      LdbcConfig cfg;
      cfg.num_vertices = std::uint64_t{1} << (15 - shift);
      cfg.avg_degree = 16.0;
      cfg.seed = 113;
      return generate_ldbc(cfg);
    }
  }
  throw std::out_of_range("unknown dataset id");
}

graph::PropertyGraph build_dataset_graph(DatasetId id, Scale scale) {
  return build_property_graph(generate_dataset(id, scale));
}

}  // namespace graphbig::datagen
