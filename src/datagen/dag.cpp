#include <algorithm>

#include "datagen/generators.h"
#include "platform/rng.h"

namespace graphbig::datagen {

// Layered DAG: vertices are assigned to layers; each non-root vertex picks
// parents from the few preceding layers. Edges always point from lower to
// higher vertex id, guaranteeing acyclicity (needed by TMorph and the
// Bayesian-network workloads).
EdgeList generate_dag(const DagConfig& cfg) {
  EdgeList el;
  el.num_vertices = cfg.num_vertices;
  el.directed = true;
  platform::Xoshiro256 rng(cfg.seed);

  const int layers = std::max(2, cfg.num_layers);
  const std::uint64_t per_layer =
      std::max<std::uint64_t>(1, cfg.num_vertices / layers);

  for (std::uint64_t v = per_layer; v < cfg.num_vertices; ++v) {
    const std::uint64_t layer = v / per_layer;
    const std::uint64_t window_lo =
        layer >= 3 ? (layer - 3) * per_layer : 0;
    const std::uint64_t window_hi = layer * per_layer;
    if (window_hi <= window_lo) continue;
    // Poisson-ish parent count around avg_parents.
    std::uint64_t parents = 1;
    double p = cfg.avg_parents - 1.0;
    while (p > 0 && rng.chance(std::min(1.0, p))) {
      ++parents;
      p -= 1.0;
    }
    for (std::uint64_t k = 0; k < parents; ++k) {
      const std::uint64_t parent =
          window_lo + rng.bounded(window_hi - window_lo);
      el.edges.emplace_back(static_cast<std::uint32_t>(parent),
                            static_cast<std::uint32_t>(v));
    }
  }
  canonicalize(el);
  return el;
}

}  // namespace graphbig::datagen
