#include "datagen/generators.h"
#include "platform/rng.h"

namespace graphbig::datagen {

EdgeList generate_rmat(const RmatConfig& cfg) {
  EdgeList el;
  el.num_vertices = std::uint64_t{1} << cfg.scale;
  el.directed = true;
  const std::uint64_t target_edges = el.num_vertices *
                                     static_cast<std::uint64_t>(cfg.edge_factor);
  el.edges.reserve(target_edges);

  platform::Xoshiro256 rng(cfg.seed);
  const double ab = cfg.a + cfg.b;
  const double abc = ab + cfg.c;
  for (std::uint64_t i = 0; i < target_edges; ++i) {
    std::uint64_t src = 0, dst = 0;
    for (int bit = 0; bit < cfg.scale; ++bit) {
      const double r = rng.uniform();
      // Pick one of the four quadrants per recursion level.
      const std::uint64_t sbit = (r >= ab) ? 1u : 0u;
      const std::uint64_t dbit = (r >= cfg.a && r < ab) || (r >= abc) ? 1u : 0u;
      src = (src << 1) | sbit;
      dst = (dst << 1) | dbit;
    }
    if (src == dst) continue;  // drop self loops as they are generated
    el.edges.emplace_back(static_cast<std::uint32_t>(src),
                          static_cast<std::uint32_t>(dst));
  }
  canonicalize(el);
  return el;
}

}  // namespace graphbig::datagen
