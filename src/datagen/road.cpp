#include "datagen/generators.h"
#include "platform/rng.h"

namespace graphbig::datagen {

// Jittered 2D lattice. Intersections are grid points; a fraction of grid
// edges is removed (rivers, mountains, unbuilt blocks) and a small fraction
// of diagonal shortcuts is added (highways). Mean degree lands near the
// real CA road network's ~2.9, with near-planar regular topology and the
// large diameter that gives road graphs their long BFS tails.
EdgeList generate_road(const RoadConfig& cfg) {
  EdgeList el;
  el.num_vertices = cfg.rows * cfg.cols;
  el.directed = false;
  platform::Xoshiro256 rng(cfg.seed);

  auto vid = [&](std::uint64_t r, std::uint64_t c) {
    return static_cast<std::uint32_t>(r * cfg.cols + c);
  };

  el.weights.reserve(el.num_vertices * 2);
  for (std::uint64_t r = 0; r < cfg.rows; ++r) {
    for (std::uint64_t c = 0; c < cfg.cols; ++c) {
      // Edge lengths jittered around 1.0 to act as road distances.
      if (c + 1 < cfg.cols && !rng.chance(cfg.removal_fraction)) {
        el.edges.emplace_back(vid(r, c), vid(r, c + 1));
        el.weights.push_back(rng.uniform(0.5, 1.5));
      }
      if (r + 1 < cfg.rows && !rng.chance(cfg.removal_fraction)) {
        el.edges.emplace_back(vid(r, c), vid(r + 1, c));
        el.weights.push_back(rng.uniform(0.5, 1.5));
      }
      if (r + 1 < cfg.rows && c + 1 < cfg.cols &&
          rng.chance(cfg.diagonal_fraction)) {
        el.edges.emplace_back(vid(r, c), vid(r + 1, c + 1));
        el.weights.push_back(rng.uniform(0.7, 2.1));
      }
    }
  }
  return el;
}

}  // namespace graphbig::datagen
