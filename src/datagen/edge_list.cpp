#include "datagen/edge_list.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace graphbig::datagen {

void canonicalize(EdgeList& el) {
  const bool weighted = !el.weights.empty();
  std::vector<std::size_t> order(el.edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return el.edges[a] < el.edges[b];
  });
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<double> weights;
  edges.reserve(el.edges.size());
  for (const std::size_t i : order) {
    const auto& e = el.edges[i];
    if (e.first == e.second) continue;
    if (!edges.empty() && edges.back() == e) continue;
    edges.push_back(e);
    if (weighted) weights.push_back(el.weights[i]);
  }
  el.edges = std::move(edges);
  el.weights = std::move(weights);
}

graph::PropertyGraph build_property_graph(const EdgeList& el) {
  graph::PropertyGraph g;
  // Generator output is already deduplicated, so skip the per-insert
  // duplicate scan (quadratic on hub vertices of heavy-tailed graphs).
  g.set_allow_parallel_edges(true);
  g.reserve(el.num_vertices);
  for (std::uint64_t v = 0; v < el.num_vertices; ++v) {
    g.add_vertex(v);
  }
  const bool weighted = !el.weights.empty();
  for (std::size_t i = 0; i < el.edges.size(); ++i) {
    const auto [s, d] = el.edges[i];
    const double w = weighted ? el.weights[i] : 1.0;
    g.add_edge(s, d, w);
    if (!el.directed) g.add_edge(d, s, w);
  }
  // Restore duplicate rejection for subsequent dynamic mutation (GUp,
  // TMorph and user code rely on set semantics).
  g.set_allow_parallel_edges(false);
  return g;
}

void write_edge_list(const EdgeList& el, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << el.num_vertices << ' ' << (el.directed ? 1 : 0) << '\n';
  const bool weighted = !el.weights.empty();
  for (std::size_t i = 0; i < el.edges.size(); ++i) {
    out << el.edges[i].first << ' ' << el.edges[i].second;
    if (weighted) out << ' ' << el.weights[i];
    out << '\n';
  }
}

EdgeList read_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  EdgeList el;
  int directed = 1;
  if (!(in >> el.num_vertices >> directed)) {
    throw std::runtime_error("malformed edge list header: " + path);
  }
  el.directed = directed != 0;
  std::uint32_t s = 0, d = 0;
  std::string rest;
  while (in >> s >> d) {
    el.edges.emplace_back(s, d);
    // Optional weight until end of line.
    if (in.peek() == ' ') {
      double w = 1.0;
      if (in >> w) el.weights.push_back(w);
    }
  }
  if (!el.weights.empty() && el.weights.size() != el.edges.size()) {
    throw std::runtime_error("inconsistent weights in edge list: " + path);
  }
  return el;
}

}  // namespace graphbig::datagen
