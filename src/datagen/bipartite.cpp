#include "datagen/generators.h"
#include "platform/rng.h"

namespace graphbig::datagen {

// Users occupy ids [0, num_users); documents occupy
// [num_users, num_users + num_docs). Each access is an edge user -> doc,
// with document popularity Zipf-distributed: a small set of hot documents
// accumulates very large in-degree, giving the "large vertex degrees, large
// two-hop neighbourhoods" signature of information networks (Table 2).
EdgeList generate_bipartite(const BipartiteConfig& cfg) {
  EdgeList el;
  el.num_vertices = cfg.num_users + cfg.num_docs;
  el.directed = true;
  platform::Xoshiro256 rng(cfg.seed);
  platform::ZipfSampler doc_pop(cfg.num_docs, cfg.doc_popularity_exponent);

  const auto target = static_cast<std::uint64_t>(
      static_cast<double>(cfg.num_users) * cfg.avg_accesses_per_user);
  el.edges.reserve(target);
  for (std::uint64_t i = 0; i < target; ++i) {
    // User activity is itself skewed: square the uniform draw so a minority
    // of users contributes most accesses.
    const auto user = static_cast<std::uint32_t>(
        static_cast<double>(cfg.num_users) *
        rng.uniform() * rng.uniform());
    const auto doc =
        static_cast<std::uint32_t>(cfg.num_users + doc_pop.sample(rng));
    el.edges.emplace_back(std::min<std::uint32_t>(
                              user, static_cast<std::uint32_t>(
                                        cfg.num_users - 1)),
                          doc);
  }
  canonicalize(el);
  return el;
}

}  // namespace graphbig::datagen
