// Synthetic graph generators standing in for the paper's datasets.
//
// The real Twitter sample, IBM Knowledge Repo and IBM Watson Gene graphs
// are proprietary; each generator below reproduces the topology *class* of
// its data source as characterized in Table 2 of the paper, at configurable
// scale. See DESIGN.md ("Substitutions") for the mapping.
#pragma once

#include <cstdint>

#include "datagen/edge_list.h"

namespace graphbig::datagen {

/// R-MAT / Kronecker generator (Graph500-style). With the default
/// (a,b,c,d) = (.57,.19,.19,.05) skew it produces the heavy-tailed degree
/// distribution of a social/interaction graph -- our stand-in for the
/// sampled Twitter graph (data source type 1).
struct RmatConfig {
  int scale = 14;            // 2^scale vertices
  int edge_factor = 8;       // edges per vertex
  double a = 0.57, b = 0.19, c = 0.19;
  std::uint64_t seed = 1;
};
EdgeList generate_rmat(const RmatConfig& cfg);

/// LDBC-like social network generator. Mimics the S3G2/LDBC generator's
/// structure-correlated output: vertices are partitioned into communities
/// with power-law sizes, most edges stay inside the community, and a
/// power-law attachment process adds cross-community "celebrity" edges.
/// Produces facebook-like graphs with large connected components, short
/// paths and unbalanced degrees spread over many vertices (the feature the
/// paper cites for LDBC's high warp divergence).
struct LdbcConfig {
  std::uint64_t num_vertices = 1 << 16;
  double avg_degree = 16.0;
  double community_exponent = 1.8;   // community-size power law
  double intra_fraction = 0.55;      // fraction of edges inside community
  std::uint64_t seed = 7;
};
EdgeList generate_ldbc(const LdbcConfig& cfg);

/// Bipartite user/document graph -- stand-in for IBM Knowledge Repo (data
/// source type 2, information network): "large vertex degrees, large
/// two-hop neighbourhoods". Users access documents with Zipf-distributed
/// document popularity.
struct BipartiteConfig {
  std::uint64_t num_users = 1 << 14;
  std::uint64_t num_docs = 1 << 12;
  double avg_accesses_per_user = 12.0;
  double doc_popularity_exponent = 0.9;
  std::uint64_t seed = 11;
};
EdgeList generate_bipartite(const BipartiteConfig& cfg);

/// Gene/chemical/drug interaction network -- stand-in for IBM Watson Gene
/// (data source type 3, nature network): "complex properties, structured
/// topology". Entities form typed modules (pathways); interactions are
/// dense inside modules with sparse bridges between related modules.
struct GeneConfig {
  std::uint64_t num_entities = 1 << 15;
  std::uint64_t module_size = 24;
  double intra_module_p = 0.35;
  double bridge_per_module = 3.0;
  std::uint64_t seed = 13;
};
EdgeList generate_gene(const GeneConfig& cfg);

/// Road network -- stand-in for the CA road network (data source type 4,
/// man-made technology network): "regular topology, small vertex degrees".
/// A jittered 2D grid with a fraction of removed and diagonal edges,
/// undirected, mean degree ~2.9 like the real CA-RoadNet.
struct RoadConfig {
  std::uint64_t rows = 384;
  std::uint64_t cols = 384;
  double removal_fraction = 0.22;
  double diagonal_fraction = 0.05;
  std::uint64_t seed = 17;
};
EdgeList generate_road(const RoadConfig& cfg);

/// Layered directed acyclic graph; input for TMorph (moralization) and the
/// Bayesian-network generator.
struct DagConfig {
  std::uint64_t num_vertices = 1 << 12;
  int num_layers = 24;
  double avg_parents = 2.0;
  std::uint64_t seed = 23;
};
EdgeList generate_dag(const DagConfig& cfg);

}  // namespace graphbig::datagen
