#include <cmath>

#include "datagen/generators.h"
#include "platform/rng.h"

namespace graphbig::datagen {

// Entities (genes, chemicals, drugs) are grouped into fixed-size modules
// ("pathways"). Interactions are dense within a module and sparse bridges
// connect a module to a few topically adjacent modules -- a structured
// topology with bounded degree variance, matching the "nature network"
// source type. Vertices additionally get local small-world shortcuts so the
// graph stays connected across modules like real interactome graphs.
EdgeList generate_gene(const GeneConfig& cfg) {
  EdgeList el;
  el.num_vertices = cfg.num_entities;
  el.directed = true;
  platform::Xoshiro256 rng(cfg.seed);

  const std::uint64_t module_size = std::max<std::uint64_t>(4, cfg.module_size);
  const std::uint64_t num_modules =
      (cfg.num_entities + module_size - 1) / module_size;

  for (std::uint64_t m = 0; m < num_modules; ++m) {
    const std::uint64_t lo = m * module_size;
    const std::uint64_t hi = std::min(lo + module_size, cfg.num_entities);
    // Dense intra-module interactions.
    for (std::uint64_t u = lo; u < hi; ++u) {
      for (std::uint64_t v = u + 1; v < hi; ++v) {
        if (rng.chance(cfg.intra_module_p)) {
          el.edges.emplace_back(static_cast<std::uint32_t>(u),
                                static_cast<std::uint32_t>(v));
        }
      }
    }
    // Bridges to nearby modules (pathway cross-talk).
    const auto bridges = static_cast<std::uint64_t>(
        cfg.bridge_per_module + rng.bounded(3));
    for (std::uint64_t b = 0; b < bridges; ++b) {
      // Target module is close in id space: biological pathway graphs have
      // hierarchical, locally clustered cross-talk.
      const std::uint64_t hop = 1 + rng.bounded(8);
      const std::uint64_t tm = (m + hop) % num_modules;
      const std::uint64_t src = lo + rng.bounded(hi - lo);
      const std::uint64_t tlo = tm * module_size;
      const std::uint64_t thi = std::min(tlo + module_size, cfg.num_entities);
      if (thi <= tlo) continue;
      const std::uint64_t dst = tlo + rng.bounded(thi - tlo);
      if (src == dst) continue;
      el.edges.emplace_back(static_cast<std::uint32_t>(src),
                            static_cast<std::uint32_t>(dst));
    }
  }
  canonicalize(el);
  return el;
}

}  // namespace graphbig::datagen
