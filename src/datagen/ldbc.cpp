#include <algorithm>
#include <cmath>

#include "datagen/generators.h"
#include "platform/rng.h"

namespace graphbig::datagen {

// Community-structured social graph in the spirit of the LDBC/S3G2
// generator: power-law community sizes, dense intra-community linking with
// distance-decaying probability, and global preferential attachment for the
// remaining edges. The output matches the qualitative LDBC features the
// paper relies on: one giant component, short paths, and degree imbalance
// spread across many vertices (not just a few hubs, unlike Twitter).
EdgeList generate_ldbc(const LdbcConfig& cfg) {
  EdgeList el;
  el.num_vertices = cfg.num_vertices;
  el.directed = true;
  platform::Xoshiro256 rng(cfg.seed);

  // 1. Carve vertices into communities with power-law sizes in
  //    [min_size, max_size].
  const std::uint64_t min_size = 8;
  const std::uint64_t max_size =
      std::max<std::uint64_t>(min_size * 2, cfg.num_vertices / 64);
  std::vector<std::uint64_t> community_start;  // first vertex of community i
  std::uint64_t cursor = 0;
  while (cursor < cfg.num_vertices) {
    // Inverse-CDF sample of a bounded Pareto distribution.
    const double u = rng.uniform();
    const double alpha = cfg.community_exponent;
    const double lo = static_cast<double>(min_size);
    const double hi = static_cast<double>(max_size);
    const double x =
        std::pow(std::pow(lo, 1 - alpha) +
                     u * (std::pow(hi, 1 - alpha) - std::pow(lo, 1 - alpha)),
                 1.0 / (1 - alpha));
    const auto size = static_cast<std::uint64_t>(x);
    community_start.push_back(cursor);
    cursor += std::max<std::uint64_t>(min_size, size);
  }
  community_start.push_back(cfg.num_vertices);

  const auto target_edges = static_cast<std::uint64_t>(
      static_cast<double>(cfg.num_vertices) * cfg.avg_degree);
  el.edges.reserve(target_edges);

  // 2. Intra-community edges: each vertex links to community members with
  //    probability decaying in id distance (models the S3G2 similarity
  //    windows).
  const auto intra_budget = static_cast<std::uint64_t>(
      static_cast<double>(target_edges) * cfg.intra_fraction);
  std::uint64_t intra_emitted = 0;
  for (std::size_t c = 0; c + 1 < community_start.size() &&
                          intra_emitted < intra_budget;
       ++c) {
    const std::uint64_t lo = community_start[c];
    const std::uint64_t hi = std::min(community_start[c + 1],
                                      cfg.num_vertices);
    const std::uint64_t size = hi - lo;
    if (size < 2) continue;
    // Per-vertex quota around the global average, with a heavy-ish tail:
    // real social activity is unevenly distributed inside a community.
    const auto base_quota = static_cast<std::uint64_t>(
        cfg.avg_degree * cfg.intra_fraction);
    for (std::uint64_t v = lo; v < hi; ++v) {
      // Pareto-like multiplier in [0.25, ~6): u^-0.8 scaled.
      const double mult =
          0.25 * std::pow(std::max(rng.uniform(), 1e-3), -0.8);
      const auto quota = static_cast<std::uint64_t>(
          static_cast<double>(base_quota) * std::min(mult, 6.0));
      for (std::uint64_t k = 0; k < std::max<std::uint64_t>(1, quota); ++k) {
        // Prefer close ids: geometric-ish distance sampling.
        const std::uint64_t span = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(size) * std::pow(rng.uniform(), 2.0)));
        std::uint64_t u = lo + (v - lo + 1 + rng.bounded(span)) % size;
        if (u == v) u = lo + (u + 1 - lo) % size;
        el.edges.emplace_back(static_cast<std::uint32_t>(v),
                              static_cast<std::uint32_t>(u));
        ++intra_emitted;
      }
    }
  }

  // 3. Global edges by preferential attachment over a Zipf popularity
  //    ranking (celebrities), with ranks shuffled so hot vertices are
  //    scattered across communities.
  std::vector<std::uint32_t> rank_to_vertex(cfg.num_vertices);
  for (std::uint64_t i = 0; i < cfg.num_vertices; ++i) {
    rank_to_vertex[i] = static_cast<std::uint32_t>(i);
  }
  for (std::uint64_t i = cfg.num_vertices - 1; i > 0; --i) {
    std::swap(rank_to_vertex[i], rank_to_vertex[rng.bounded(i + 1)]);
  }
  platform::ZipfSampler zipf(
      std::min<std::uint64_t>(cfg.num_vertices, 1 << 20), 0.8);
  // LDBC/S3G2 person degrees are facebook-like: unbalanced across many
  // vertices but without Twitter-style extreme hubs (the paper contrasts
  // the two in Section 5.3). Cap the per-vertex in-degree accordingly.
  const auto degree_cap = static_cast<std::uint64_t>(cfg.avg_degree * 12.0);
  std::vector<std::uint32_t> in_count(cfg.num_vertices, 0);
  std::vector<std::uint32_t> out_count(cfg.num_vertices, 0);
  while (el.edges.size() < target_edges) {
    // Sources are mildly skewed too (active users follow more).
    const auto src = rank_to_vertex[static_cast<std::uint64_t>(
        static_cast<double>(cfg.num_vertices) * rng.uniform() *
        rng.uniform())];
    const std::uint32_t dst = rank_to_vertex[zipf.sample(rng)];
    if (src == dst) continue;
    if (in_count[dst] >= degree_cap || out_count[src] >= degree_cap) {
      continue;
    }
    ++in_count[dst];
    ++out_count[src];
    el.edges.emplace_back(src, dst);
  }

  canonicalize(el);
  return el;
}

}  // namespace graphbig::datagen
