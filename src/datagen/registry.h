// Dataset registry: named dataset configurations mirroring Table 5/7 of the
// paper, at three scales. The experiment harness and benches request
// datasets by name so every figure uses the same graphs.
#pragma once

#include <string>
#include <vector>

#include "datagen/edge_list.h"

namespace graphbig::datagen {

/// The five graph datasets of Table 7 (plus the scale-free knob).
/// "twitter"   - sampled Twitter graph (social network, type 1)
/// "knowledge" - IBM Knowledge Repo (information network, type 2)
/// "watson"    - IBM Watson Gene graph (nature network, type 3)
/// "roadnet"   - CA road network (man-made technology network, type 4)
/// "ldbc"      - LDBC synthetic social graph
enum class DatasetId {
  kTwitter,
  kKnowledge,
  kWatson,
  kRoadNet,
  kLdbc,
};

/// Experiment scale. The paper runs LDBC-1M/Twitter-11M; full perf-counter
/// hardware digests that in-line, but our software cache model replays every
/// access, so the default "Small" scale shrinks each dataset by a constant
/// factor while preserving its topology class. "Tiny" is for unit tests.
enum class Scale { kTiny, kSmall, kMedium };

struct DatasetInfo {
  DatasetId id;
  std::string name;         // short name used in tables ("twitter", ...)
  std::string description;  // Table 5 description
  int source_type;          // Table 2 data source type (1..4), 0 = synthetic
};

/// All five datasets in Table 7 order.
const std::vector<DatasetInfo>& all_datasets();

const DatasetInfo& dataset_info(DatasetId id);

/// Dataset by name; throws std::out_of_range for unknown names.
DatasetId dataset_by_name(const std::string& name);

/// Generates the edge list for a dataset at a scale. Deterministic.
EdgeList generate_dataset(DatasetId id, Scale scale);

/// Convenience: generate + build the dynamic property graph.
graph::PropertyGraph build_dataset_graph(DatasetId id, Scale scale);

}  // namespace graphbig::datagen
