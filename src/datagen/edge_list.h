// Edge-list intermediate form shared by all generators, plus conversion to
// the dynamic property graph and plain-text I/O (the same "vertex pair per
// line" format the original GraphBIG datasets ship in).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace graphbig::datagen {

struct EdgeList {
  std::uint64_t num_vertices = 0;
  bool directed = true;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  /// Optional per-edge weights; empty means unit weights.
  std::vector<double> weights;

  std::size_t num_edges() const { return edges.size(); }
};

/// Removes self loops and duplicate edges (keeping the first weight).
void canonicalize(EdgeList& el);

/// Builds the dynamic vertex-centric graph through framework primitives
/// (the same population path GCons exercises). For undirected edge lists
/// each edge is inserted in both directions.
graph::PropertyGraph build_property_graph(const EdgeList& el);

/// Plain-text serialization: header line "num_vertices directed", then one
/// "src dst [weight]" line per edge.
void write_edge_list(const EdgeList& el, const std::string& path);
EdgeList read_edge_list(const std::string& path);

}  // namespace graphbig::datagen
