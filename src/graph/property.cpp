#include "graph/property.h"

namespace graphbig::graph {

namespace {

std::size_t value_bytes(const PropertyValue& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return s->size();
  if (const auto* t = std::get_if<std::vector<double>>(&v)) {
    return t->size() * sizeof(double);
  }
  return sizeof(double);
}

}  // namespace

const PropertyMap::Entry* PropertyMap::find(PropKey key) const {
  for (const auto& e : entries_) {
    trace::read(trace::MemKind::kProperty, &e, sizeof(Entry));
    if (e.key == key) return &e;
  }
  return nullptr;
}

PropertyMap::Entry* PropertyMap::find(PropKey key) {
  return const_cast<Entry*>(
      static_cast<const PropertyMap*>(this)->find(key));
}

void PropertyMap::set(PropKey key, PropertyValue value) {
  trace::block(trace::kBlockPropertyWrite);
  if (Entry* e = find(key)) {
    e->value = std::move(value);
    trace::write(trace::MemKind::kProperty, e,
                 static_cast<std::uint32_t>(value_bytes(e->value)));
    return;
  }
  entries_.push_back(Entry{key, std::move(value)});
  trace::write(trace::MemKind::kProperty, &entries_.back(),
               static_cast<std::uint32_t>(sizeof(Entry)));
}

const PropertyValue* PropertyMap::get(PropKey key) const {
  trace::block(trace::kBlockPropertyRead);
  const Entry* e = find(key);
  return e != nullptr ? &e->value : nullptr;
}

PropertyValue* PropertyMap::get_mutable(PropKey key) {
  trace::block(trace::kBlockPropertyRead);
  Entry* e = find(key);
  return e != nullptr ? &e->value : nullptr;
}

std::int64_t PropertyMap::get_int(PropKey key, std::int64_t fallback) const {
  const PropertyValue* v = get(key);
  if (v == nullptr) return fallback;
  if (const auto* i = std::get_if<std::int64_t>(v)) return *i;
  return fallback;
}

double PropertyMap::get_double(PropKey key, double fallback) const {
  const PropertyValue* v = get(key);
  if (v == nullptr) return fallback;
  if (const auto* d = std::get_if<double>(v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

void PropertyMap::set_int(PropKey key, std::int64_t v) {
  trace::block(trace::kBlockPropertyWrite);
  if (Entry* e = find(key)) {
    e->value = v;
    trace::write(trace::MemKind::kProperty, e, sizeof(std::int64_t));
    return;
  }
  entries_.push_back(Entry{key, PropertyValue{v}});
  trace::write(trace::MemKind::kProperty, &entries_.back(), sizeof(Entry));
}

void PropertyMap::set_double(PropKey key, double v) {
  trace::block(trace::kBlockPropertyWrite);
  if (Entry* e = find(key)) {
    e->value = v;
    trace::write(trace::MemKind::kProperty, e, sizeof(double));
    return;
  }
  entries_.push_back(Entry{key, PropertyValue{v}});
  trace::write(trace::MemKind::kProperty, &entries_.back(), sizeof(Entry));
}

bool PropertyMap::erase(PropKey key) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].key == key) {
      entries_[i] = std::move(entries_.back());
      entries_.pop_back();
      return true;
    }
  }
  return false;
}

std::size_t PropertyMap::footprint_bytes() const {
  std::size_t total = entries_.capacity() * sizeof(Entry);
  for (const auto& e : entries_) total += value_bytes(e.value);
  return total;
}

}  // namespace graphbig::graph
