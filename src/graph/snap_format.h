// graphbig.snap.v1: versioned, checksummed, mmap-friendly binary
// serialization of GraphSnapshot.
//
// The paper frames graph systems as *stores* serving analytics, yet every
// run here regenerated its dataset and every snapshot lived and died in
// RAM. This format makes the frozen representation durable: a fixed
// little-endian header, a section table, then 64-byte-aligned sections
// holding the CSR arrays exactly as the snapshot lays them out in its
// arena — already in the transfer-ready order the SIMT copy path (and a
// future split-transfer scheme) consumes.
//
//   offset 0                128               aligned(64) ...
//   +--------------------+ +---------------+ +-----------+---+-----------+
//   | header (128 bytes) | | section table | | section 1 |pad| section 2 |
//   | magic GBSNAPv1     | | 32 B / entry  | +-----------+---+-----------+
//   | version, counts,   | | id, offset,   |
//   | layout, checksums  | | bytes, fnv64  |
//   +--------------------+ +---------------+
//
// Sections (every section is always present; enc/property sections may be
// zero bytes):
//
//   out_ptr / in_ptr   logical degree-prefix arrays, (rows+1) x u64
//   orig_id            external id per row, rows x u64
//   out_row_off        per-row storage locator, rows x u64: element offset
//   out_wrow_off       into the payload section, or (bit 63 set) byte
//   in_row_off         offset into the matching *_enc section
//   out_dst / in_src   raw adjacency payload, physical placement order
//   out_weight         edge weights (always raw doubles), placement order
//   out_enc / in_enc   delta-varint row blobs (graph/varint.h)
//   id_map             (id, row) pairs ascending row, num_vertices x 16 B
//   col_int / col_dbl  materialized property columns by column slot
//   layout_stats       LayoutStats sans timing
//
// The row-offset tables are the load-bearing trick: they persist the
// snapshot's per-row pointer indirection as section-relative offsets, so
// physical placement (degree/RCM reordering, refresh tail rows, per-row
// compression) round-trips byte-exactly AND a pager can locate any row's
// storage without understanding the placement policy — paging is
// layout-agnostic by construction (graph/disk_graph.h builds on this).
//
// Integrity: every section carries an FNV-1a 64 checksum; the header
// carries a checksum of the section table and a whole-file checksum
// (header fields + table, which transitively covers all payloads through
// the per-section sums). Loaders validate before interpreting anything,
// and every failure throws SnapError naming the offending section — never
// a crash, never a silent partial load.
//
// Determinism: save() writes payload rows ordered by their in-memory
// storage address, which preserves the freeze-time physical placement and
// makes save -> load -> save byte-identical for every layout/compression
// combination (the round-trip gate snap_format_test enforces). Nothing
// time- or environment-dependent is written.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/snapshot.h"

namespace graphbig::graph::snap {

/// Schema name recorded in run reports and printed by graphbig_snap.
inline constexpr const char* kSchemaName = "graphbig.snap.v1";

/// "GBSNAPv1" read as a little-endian u64.
inline constexpr std::uint64_t kMagic = 0x3176'5041'4E53'4247ull;

inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kHeaderBytes = 128;
inline constexpr std::uint32_t kSectionEntryBytes = 32;
inline constexpr std::uint64_t kSectionAlign = 64;

/// Row-offset table entries with this bit set locate the row in the
/// encoded-blob section (low bits = byte offset); otherwise the low bits
/// are an element offset into the raw payload section.
inline constexpr std::uint64_t kEncodedRowBit = 1ull << 63;

/// Section ids, in file order. Values are stable format ABI.
enum class SectionId : std::uint32_t {
  kOutPtr = 1,
  kInPtr = 2,
  kOrigId = 3,
  kOutRowOff = 4,
  kOutWrowOff = 5,
  kInRowOff = 6,
  kOutDst = 7,
  kOutWeight = 8,
  kInSrc = 9,
  kOutEnc = 10,
  kInEnc = 11,
  kIdMap = 12,
  kColInt = 13,
  kColDbl = 14,
  kLayoutStats = 15,
};

inline constexpr std::uint32_t kSectionCount = 15;

/// Human-readable section name ("out_ptr", ...); "unknown" for bad ids.
const char* section_name(std::uint32_t id);

/// Any structural or integrity failure while reading/validating a
/// snapshot file. The message names the section (or header field) that
/// failed — the corruption-fuzz tests assert on that.
class SnapError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a 64 over a byte range, chainable through `seed`.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0xCBF29CE484222325ull);

struct SectionInfo {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

/// Parsed header + section table of a snapshot file.
struct SnapInfo {
  std::uint32_t version = 0;
  std::uint32_t row_count = 0;
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t num_in_edges = 0;
  LayoutOptions layout;
  std::uint64_t file_bytes = 0;
  /// Whole-file checksum (header fields + section table; the table's
  /// per-section sums transitively cover every payload byte).
  std::uint64_t file_checksum = 0;
  std::vector<SectionInfo> sections;

  const SectionInfo* section(SectionId id) const;
};

/// Serializes the snapshot to `path` (overwrites). Returns the written
/// file's SnapInfo. Throws SnapError on I/O failure.
SnapInfo save_snapshot(const GraphSnapshot& s, const std::string& path);

/// Reads, fully validates (structure + every section checksum), and
/// reconstructs an in-RAM snapshot. The result is traversal-identical to
/// the snapshot that was saved — same row space, placement, encoding, and
/// materialized columns; its mutation-log base is cleared, so a later
/// refresh() against a live graph takes the guarded full rebuild. Throws
/// SnapError naming the failing section on any corruption.
GraphSnapshot load_snapshot(const std::string& path, SnapInfo* info = nullptr);

/// Header + section-table read (bounds, table and file checksums); does
/// NOT touch section payloads — O(1) in graph size. Throws SnapError.
SnapInfo inspect_snapshot(const std::string& path);

/// inspect + recomputes every section's payload checksum (full file
/// read). Throws SnapError naming the first mismatching section.
SnapInfo validate_snapshot(const std::string& path);

}  // namespace graphbig::graph::snap
