#include "graph/snapshot.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_span.h"
#include "platform/timer.h"

namespace graphbig::graph {

namespace {

template <typename T>
T* arena_array(platform::Arena& arena, std::size_t count) {
  static_assert(std::is_trivially_destructible_v<T>);
  T* p = static_cast<T*>(arena.allocate(count * sizeof(T), alignof(T)));
  std::memset(static_cast<void*>(p), 0, count * sizeof(T));
  return p;
}

// Registry series for the frozen layer: freeze/refresh counts (split by
// incremental vs full-rebuild fallback), rewritten-row and copied-edge
// volume, and the arena footprint as a gauge.
struct SnapshotSeries {
  obs::Counter freezes;
  obs::Counter refreshes_incremental;
  obs::Counter refreshes_full;
  obs::Counter rows_rewritten;
  obs::Counter edges_copied;
  obs::Gauge arena_bytes;
};

SnapshotSeries& snapshot_series() {
  static SnapshotSeries* s = [] {
    auto& r = obs::MetricsRegistry::instance();
    return new SnapshotSeries{
        r.counter("snapshot.freezes"),
        r.counter("snapshot.refreshes_incremental"),
        r.counter("snapshot.refreshes_full"),
        r.counter("snapshot.rows_rewritten"),
        r.counter("snapshot.edges_copied"),
        r.gauge("snapshot.arena_bytes"),
    };
  }();
  return *s;
}

}  // namespace

// ---------------------------------------------------------------------------
// PropertyColumns
// ---------------------------------------------------------------------------

std::int64_t* PropertyColumns::int_col(PropKey key) {
  auto& slot = int_cols_[slot_for(key)];
  if (std::int64_t* col = slot.load(std::memory_order_acquire)) return col;
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  if (std::int64_t* col = slot.load(std::memory_order_relaxed)) return col;
  auto storage = std::make_unique<std::int64_t[]>(rows_);
  std::int64_t* col = storage.get();
  int_storage_.push_back(std::move(storage));
  slot.store(col, std::memory_order_release);
  return col;
}

double* PropertyColumns::dbl_col(PropKey key) {
  auto& slot = dbl_cols_[slot_for(key)];
  if (double* col = slot.load(std::memory_order_acquire)) return col;
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  if (double* col = slot.load(std::memory_order_relaxed)) return col;
  auto storage = std::make_unique<double[]>(rows_);
  double* col = storage.get();
  dbl_storage_.push_back(std::move(storage));
  slot.store(col, std::memory_order_release);
  return col;
}

std::size_t PropertyColumns::footprint_bytes() const {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  return int_storage_.size() * rows_ * sizeof(std::int64_t) +
         dbl_storage_.size() * rows_ * sizeof(double);
}

// ---------------------------------------------------------------------------
// GraphSnapshot
// ---------------------------------------------------------------------------

const char* to_string(RefreshStats::Kind kind) {
  switch (kind) {
    case RefreshStats::Kind::kIncremental:
      return "incremental";
    case RefreshStats::Kind::kFullRebuild:
      return "full-rebuild";
    case RefreshStats::Kind::kNone:
      break;
  }
  return "none";
}

const char* to_string(VertexOrder order) {
  switch (order) {
    case VertexOrder::kDegree:
      return "degree";
    case VertexOrder::kRcm:
      return "rcm";
    case VertexOrder::kNatural:
      break;
  }
  return "natural";
}

bool parse_vertex_order(const std::string& text, VertexOrder* out) {
  if (text == "natural") {
    *out = VertexOrder::kNatural;
  } else if (text == "degree") {
    *out = VertexOrder::kDegree;
  } else if (text == "rcm") {
    *out = VertexOrder::kRcm;
  } else {
    return false;
  }
  return true;
}

void GraphSnapshot::rebuild_from(const PropertyGraph& g) {
  arena_.reset();
  out_rows_ = nullptr;
  out_wrows_ = nullptr;
  in_rows_ = nullptr;
  out_enc_rows_ = nullptr;
  in_enc_rows_ = nullptr;
  layout_stats_ = LayoutStats{};
  out_indirect_.clear();
  in_indirect_.clear();
  out_indirected_ = 0;
  in_indirected_ = 0;
  index_.clear();

  // Pass 1: one row per slot, dead slots included; degrees from both
  // adjacency directions. These prefixes are LOGICAL (slot-space) and stay
  // so under every layout — only physical placement is permuted.
  const auto rows = static_cast<std::uint32_t>(g.slot_count());
  row_count_ = rows;
  num_vertices_ = static_cast<std::uint32_t>(g.num_vertices());

  auto* out_ptr = arena_array<std::uint64_t>(arena_, rows + 1);
  auto* in_ptr = arena_array<std::uint64_t>(arena_, rows + 1);
  auto* orig_id = arena_array<VertexId>(arena_, rows);
  for (std::uint32_t v = 0; v < rows; ++v) {
    const VertexRecord* rec = g.vertex_at(v);
    orig_id[v] = rec != nullptr ? rec->id : kInvalidVertex;
    out_ptr[v + 1] = out_ptr[v] + (rec != nullptr ? rec->out.size() : 0);
    in_ptr[v + 1] = in_ptr[v] + (rec != nullptr ? rec->in.size() : 0);
  }
  num_edges_ = out_ptr[rows];
  out_ptr_ = out_ptr;
  in_ptr_ = in_ptr;
  orig_id_ = orig_id;

  if (layout_.natural_raw()) {
    auto* out_dst = arena_array<std::uint32_t>(arena_, out_ptr[rows]);
    auto* out_weight = arena_array<double>(arena_, out_ptr[rows]);
    auto* in_src = arena_array<std::uint32_t>(arena_, in_ptr[rows]);

    // Pass 2: copy adjacency verbatim (per-vertex edge order preserved).
    // Row index == slot index, so the resolved neighbor slot IS the stored
    // row id — no renumbering table.
    for (std::uint32_t v = 0; v < rows; ++v) {
      const VertexRecord* rec = g.vertex_at(v);
      if (rec == nullptr) continue;
      std::uint64_t pos = out_ptr[v];
      g.for_each_out_edge(*rec, [&](const EdgeRecord& e, SlotIndex tslot) {
        out_dst[pos] = tslot;
        out_weight[pos] = e.weight;
        ++pos;
      });
      pos = in_ptr[v];
      g.for_each_in_neighbor(*rec, [&](VertexId, SlotIndex sslot) {
        in_src[pos++] = sslot;
      });
    }
    out_dst_ = out_dst;
    out_weight_ = out_weight;
    in_src_ = in_src;
  } else {
    apply_layout(g);
  }

  index_.reserve(num_vertices_);
  for (std::uint32_t v = 0; v < rows; ++v) {
    if (orig_id[v] != kInvalidVertex) {
      index_[orig_id[v]] = static_cast<SlotIndex>(v);
    }
  }
  columns_ = std::make_unique<PropertyColumns>(rows);
  base_serial_ = g.rearm_mutation_log();
}

std::vector<std::uint32_t> GraphSnapshot::build_order(
    const PropertyGraph& g) const {
  const std::uint32_t rows = row_count_;
  std::vector<std::uint32_t> order(rows);
  for (std::uint32_t v = 0; v < rows; ++v) order[v] = v;
  if (layout_.order == VertexOrder::kNatural) return order;

  // Hub clustering: descending undirected degree, stable so equal-degree
  // runs keep slot order (deterministic; dead rows sort last).
  auto udeg = [&](std::uint32_t v) {
    return (out_ptr_[v + 1] - out_ptr_[v]) + (in_ptr_[v + 1] - in_ptr_[v]);
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return udeg(a) > udeg(b);
                   });
  if (layout_.order == VertexOrder::kDegree) return order;

  // RCM-lite (Cuthill-McKee bands without the reversal): BFS over the
  // undirected adjacency, seeds taken in descending-degree order so each
  // component starts at its hub; neighbors enqueue in edge order. Places
  // topologically adjacent rows in nearby cache lines/pages — the win on
  // low-degree meshes (road networks) where hub clustering has no hubs to
  // cluster. Zero-degree and dead rows fall out as singleton seeds at the
  // end.
  std::vector<std::uint32_t> bands;
  bands.reserve(rows);
  std::vector<std::uint8_t> visited(rows, 0);
  std::vector<std::uint32_t> queue;
  for (const std::uint32_t seed : order) {
    if (visited[seed]) continue;
    visited[seed] = 1;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const std::uint32_t v = queue[qi];
      bands.push_back(v);
      const VertexRecord* rec = g.vertex_at(v);
      if (rec == nullptr) continue;
      g.for_each_out_edge(*rec, [&](const EdgeRecord&, SlotIndex t) {
        if (!visited[t]) {
          visited[t] = 1;
          queue.push_back(t);
        }
      });
      g.for_each_in_neighbor(*rec, [&](VertexId, SlotIndex s) {
        if (!visited[s]) {
          visited[s] = 1;
          queue.push_back(s);
        }
      });
    }
  }
  return bands;
}

void GraphSnapshot::apply_layout(const PropertyGraph& g) {
  platform::WallTimer timer;
  const std::uint32_t rows = row_count_;
  const std::uint64_t num_in = in_ptr_[rows];

  // Materialize the logical rows once into transient buffers; the arena
  // receives only the permuted (and possibly encoded) copy.
  std::vector<std::uint32_t> all_out(num_edges_);
  std::vector<double> all_w(num_edges_);
  std::vector<std::uint32_t> all_in(num_in);
  for (std::uint32_t v = 0; v < rows; ++v) {
    const VertexRecord* rec = g.vertex_at(v);
    if (rec == nullptr) continue;
    std::uint64_t pos = out_ptr_[v];
    g.for_each_out_edge(*rec, [&](const EdgeRecord& e, SlotIndex tslot) {
      all_out[pos] = tslot;
      all_w[pos] = e.weight;
      ++pos;
    });
    pos = in_ptr_[v];
    g.for_each_in_neighbor(*rec, [&](VertexId, SlotIndex sslot) {
      all_in[pos++] = sslot;
    });
  }

  // order[rank] = slot: the physical placement permutation.
  const std::vector<std::uint32_t> order = build_order(g);

  // Size pass: per-row storage disposition. enc size 0 = raw row.
  std::vector<std::uint32_t> out_enc_size(rows, 0);
  std::vector<std::uint32_t> in_enc_size(rows, 0);
  std::uint64_t out_raw_total = 0, in_raw_total = 0;
  std::uint64_t out_enc_total = 0, in_enc_total = 0;
  for (std::uint32_t v = 0; v < rows; ++v) {
    const std::uint64_t odeg = out_ptr_[v + 1] - out_ptr_[v];
    const std::uint64_t ideg = in_ptr_[v + 1] - in_ptr_[v];
    if (layout_.compress && odeg > 0) {
      const std::size_t sz =
          varint::encoded_row_size(all_out.data() + out_ptr_[v], odeg);
      if (!varint::keep_row_raw(odeg, sz, layout_.hot_row_degree)) {
        out_enc_size[v] = static_cast<std::uint32_t>(sz);
      }
    }
    if (layout_.compress && ideg > 0) {
      const std::size_t sz =
          varint::encoded_row_size(all_in.data() + in_ptr_[v], ideg);
      if (!varint::keep_row_raw(ideg, sz, layout_.hot_row_degree)) {
        in_enc_size[v] = static_cast<std::uint32_t>(sz);
      }
    }
    if (out_enc_size[v] != 0) {
      out_enc_total += out_enc_size[v];
      ++layout_stats_.rows_compressed;
    } else {
      out_raw_total += odeg;
      if (odeg > 0) ++layout_stats_.rows_raw;
    }
    if (in_enc_size[v] != 0) {
      in_enc_total += in_enc_size[v];
      ++layout_stats_.rows_compressed;
    } else {
      in_raw_total += ideg;
      if (ideg > 0) ++layout_stats_.rows_raw;
    }
  }

  auto* phys_out = arena_array<std::uint32_t>(arena_, out_raw_total);
  auto* phys_w = arena_array<double>(arena_, num_edges_);
  auto* phys_in = arena_array<std::uint32_t>(arena_, in_raw_total);
  auto* enc_out = out_enc_total > 0
                      ? arena_array<std::uint8_t>(arena_, out_enc_total)
                      : nullptr;
  auto* enc_in = in_enc_total > 0
                     ? arena_array<std::uint8_t>(arena_, in_enc_total)
                     : nullptr;
  auto* out_rows = arena_array<const std::uint32_t*>(arena_, rows);
  auto* out_wrows = arena_array<const double*>(arena_, rows);
  auto* in_rows = arena_array<const std::uint32_t*>(arena_, rows);
  auto* out_enc_rows =
      layout_.compress ? arena_array<const std::uint8_t*>(arena_, rows)
                       : nullptr;
  auto* in_enc_rows =
      layout_.compress ? arena_array<const std::uint8_t*>(arena_, rows)
                       : nullptr;

  // Placement pass, in rank order: hubs (or BFS bands) land first in the
  // arena. Weights stay raw doubles for every row, placed alongside.
  std::uint64_t opos = 0, wpos = 0, ipos = 0, oenc = 0, ienc = 0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint32_t v = order[r];
    const std::uint64_t odeg = out_ptr_[v + 1] - out_ptr_[v];
    const std::uint64_t ideg = in_ptr_[v + 1] - in_ptr_[v];

    out_wrows[v] = phys_w + wpos;
    if (odeg > 0) {
      std::memcpy(phys_w + wpos, all_w.data() + out_ptr_[v],
                  odeg * sizeof(double));
      wpos += odeg;
    }
    if (out_enc_size[v] != 0) {
      varint::encode_row(enc_out + oenc, all_out.data() + out_ptr_[v],
                         odeg);
      out_enc_rows[v] = enc_out + oenc;
      oenc += out_enc_size[v];
      out_rows[v] = nullptr;
    } else {
      if (odeg > 0) {
        std::memcpy(phys_out + opos, all_out.data() + out_ptr_[v],
                    odeg * sizeof(std::uint32_t));
      }
      out_rows[v] = phys_out + opos;
      opos += odeg;
      if (out_enc_rows != nullptr) out_enc_rows[v] = nullptr;
    }
    if (in_enc_size[v] != 0) {
      varint::encode_row(enc_in + ienc, all_in.data() + in_ptr_[v], ideg);
      in_enc_rows[v] = enc_in + ienc;
      ienc += in_enc_size[v];
      in_rows[v] = nullptr;
    } else {
      if (ideg > 0) {
        std::memcpy(phys_in + ipos, all_in.data() + in_ptr_[v],
                    ideg * sizeof(std::uint32_t));
      }
      in_rows[v] = phys_in + ipos;
      ipos += ideg;
      if (in_enc_rows != nullptr) in_enc_rows[v] = nullptr;
    }
  }

  out_dst_ = phys_out;
  out_weight_ = phys_w;
  in_src_ = phys_in;
  out_rows_ = out_rows;
  out_wrows_ = out_wrows;
  in_rows_ = in_rows;
  out_enc_rows_ = out_enc_rows;
  in_enc_rows_ = in_enc_rows;

  layout_stats_.adjacency_bytes_raw =
      (num_edges_ + num_in) * sizeof(std::uint32_t);
  layout_stats_.adjacency_bytes_stored =
      (out_raw_total + in_raw_total) * sizeof(std::uint32_t) +
      out_enc_total + in_enc_total;
  layout_stats_.seconds = timer.seconds();
}

GraphSnapshot GraphSnapshot::freeze(const PropertyGraph& g,
                                    const LayoutOptions& layout) {
  obs::ObsSpan span("freeze");
  GraphSnapshot snap;
  snap.layout_ = layout;
  snap.rebuild_from(g);
  if (obs::enabled()) {
    SnapshotSeries& ss = snapshot_series();
    ss.freezes.inc();
    ss.arena_bytes.set(snap.arena_.bytes_allocated());
  }
  return snap;
}

const RefreshStats& GraphSnapshot::refresh(const PropertyGraph& g,
                                           const RefreshOptions& opts) {
  obs::ObsSpan span("refresh");
  platform::WallTimer timer;
  RefreshStats stats;
  const MutationLog& log = g.mutation_log();
  stats.vertices_deleted =
      static_cast<std::uint32_t>(log.vertices_deleted());

  auto full_rebuild = [&](const char* reason) -> const RefreshStats& {
    rebuild_from(g);
    stats.kind = RefreshStats::Kind::kFullRebuild;
    stats.fallback_reason = reason;
    stats.rows_total = row_count_;
    stats.rows_rewritten = row_count_;
    stats.rows_added = 0;
    stats.edges_copied = num_edges_;
    stats.indirected_fraction = 0.0;
    stats.seconds = timer.seconds();
    if (obs::enabled()) {
      SnapshotSeries& ss = snapshot_series();
      ss.refreshes_full.inc();
      ss.rows_rewritten.add(stats.rows_rewritten);
      ss.edges_copied.add(stats.edges_copied);
      ss.arena_bytes.set(arena_.bytes_allocated());
    }
    last_refresh_ = stats;
    return last_refresh_;
  };

  // Layouted snapshots never delta-merge: an incremental row splice would
  // interleave unpermuted tail rows into the placement-ordered arena and
  // leave compressed rows stale. The rebuild re-applies layout_.
  if (!layout_.natural_raw()) {
    return full_rebuild("layouted snapshot (reordered/compressed rows) "
                        "requires full rebuild");
  }
  // Composition guards: the log (live generation plus its bounded
  // journal) must cover "mutations since THIS snapshot's freeze".
  if (base_serial_ == 0) {
    return full_rebuild("snapshot has no freeze base");
  }
  MutationLog::ComposedDelta delta;
  if (!log.compose_since(base_serial_, &delta)) {
    return full_rebuild("mutation-log journal does not cover the "
                        "snapshot's base serial (generation evicted or "
                        "foreign graph)");
  }
  if (delta.base_slot_count != row_count_) {
    return full_rebuild("mutation-log slot base does not match row count");
  }
  stats.vertices_deleted = static_cast<std::uint32_t>(delta.vertices_deleted);

  const std::uint32_t old_rows = row_count_;
  const auto new_rows = static_cast<std::uint32_t>(g.slot_count());

  // Compaction policy: project the indirected-row fraction this merge
  // would produce; past the threshold the tail-chasing cost (and the tail
  // space already burned) outweighs an O(V+E) rebuild.
  std::uint64_t projected_out = out_indirected_;
  std::uint64_t projected_in = in_indirected_;
  out_indirect_.resize(new_rows, 0);
  in_indirect_.resize(new_rows, 0);
  for (const SlotIndex s : delta.dirty_out) {
    if (!out_indirect_[s]) ++projected_out;
  }
  for (const SlotIndex s : delta.dirty_in) {
    if (!in_indirect_[s]) ++projected_in;
  }
  projected_out += new_rows - old_rows;
  projected_in += new_rows - old_rows;
  const double projected_fraction =
      new_rows == 0 ? 0.0
                    : static_cast<double>(projected_out + projected_in) /
                          (2.0 * new_rows);
  if (projected_fraction > opts.max_indirected_fraction) {
    return full_rebuild("indirected-row fraction past compaction threshold");
  }

  // Delta merge. Capture the pre-refresh row accessors: the old arrays
  // stay alive in the arena, so untouched rows keep their exact bytes and
  // addresses.
  const std::uint64_t* old_out_ptr = out_ptr_;
  const std::uint64_t* old_in_ptr = in_ptr_;
  const std::uint32_t* old_out_dst = out_dst_;
  const double* old_out_weight = out_weight_;
  const std::uint32_t* old_in_src = in_src_;
  const std::uint32_t* const* old_out_rows = out_rows_;
  const double* const* old_out_wrows = out_wrows_;
  const std::uint32_t* const* old_in_rows = in_rows_;
  auto old_out_row = [&](std::uint32_t v) {
    return old_out_rows != nullptr ? old_out_rows[v]
                                   : old_out_dst + old_out_ptr[v];
  };
  auto old_out_wrow = [&](std::uint32_t v) {
    return old_out_wrows != nullptr ? old_out_wrows[v]
                                    : old_out_weight + old_out_ptr[v];
  };
  auto old_in_row = [&](std::uint32_t v) {
    return old_in_rows != nullptr ? old_in_rows[v]
                                  : old_in_src + old_in_ptr[v];
  };

  auto* new_out_ptr = arena_array<std::uint64_t>(arena_, new_rows + 1);
  auto* new_in_ptr = arena_array<std::uint64_t>(arena_, new_rows + 1);
  auto* new_orig = arena_array<VertexId>(arena_, new_rows);
  auto* new_out_rows = arena_array<const std::uint32_t*>(arena_, new_rows);
  auto* new_out_wrows = arena_array<const double*>(arena_, new_rows);
  auto* new_in_rows = arena_array<const std::uint32_t*>(arena_, new_rows);

  for (std::uint32_t v = 0; v < new_rows; ++v) {
    const VertexRecord* rec = g.vertex_at(v);
    new_orig[v] = rec != nullptr ? rec->id : kInvalidVertex;
    const std::uint64_t odeg = rec != nullptr ? rec->out.size() : 0;
    const std::uint64_t ideg = rec != nullptr ? rec->in.size() : 0;
    new_out_ptr[v + 1] = new_out_ptr[v] + odeg;
    new_in_ptr[v + 1] = new_in_ptr[v] + ideg;

    const bool is_new = v >= old_rows;
    const bool out_dirty = is_new || delta.dirty_out.count(v) > 0;
    const bool in_dirty = is_new || delta.dirty_in.count(v) > 0;
    if (!is_new && (out_dirty || in_dirty)) ++stats.rows_rewritten;

    if (out_dirty) {
      if (!out_indirect_[v]) {
        out_indirect_[v] = 1;
        ++out_indirected_;
      }
      if (odeg > 0) {
        auto* dst = arena_array<std::uint32_t>(arena_, odeg);
        auto* w = arena_array<double>(arena_, odeg);
        std::uint64_t pos = 0;
        g.for_each_out_edge(*rec,
                            [&](const EdgeRecord& e, SlotIndex tslot) {
                              dst[pos] = tslot;
                              w[pos] = e.weight;
                              ++pos;
                            });
        new_out_rows[v] = dst;
        new_out_wrows[v] = w;
        stats.edges_copied += odeg;
      } else {
        new_out_rows[v] = nullptr;
        new_out_wrows[v] = nullptr;
      }
    } else {
      new_out_rows[v] = old_out_row(v);
      new_out_wrows[v] = old_out_wrow(v);
    }

    if (in_dirty) {
      if (!in_indirect_[v]) {
        in_indirect_[v] = 1;
        ++in_indirected_;
      }
      if (ideg > 0) {
        auto* src = arena_array<std::uint32_t>(arena_, ideg);
        std::uint64_t pos = 0;
        g.for_each_in_neighbor(*rec, [&](VertexId, SlotIndex sslot) {
          src[pos++] = sslot;
        });
        new_in_rows[v] = src;
        stats.edges_copied += ideg;
      } else {
        new_in_rows[v] = nullptr;
      }
    } else {
      new_in_rows[v] = old_in_row(v);
    }
  }

  // Publish the merged topology. The base edge arrays stay as-is;
  // untouched rows reference them through the indirection tables.
  out_ptr_ = new_out_ptr;
  in_ptr_ = new_in_ptr;
  orig_id_ = new_orig;
  out_rows_ = new_out_rows;
  out_wrows_ = new_out_wrows;
  in_rows_ = new_in_rows;
  row_count_ = new_rows;
  num_vertices_ = static_cast<std::uint32_t>(g.num_vertices());
  num_edges_ = new_out_ptr[new_rows];

  // External-id index: drop deleted ids first — a deleted id re-added
  // lands in a new slot, and the insertion below must win.
  for (const VertexId id : delta.deleted_ids) index_.erase(id);
  for (std::uint32_t v = old_rows; v < new_rows; ++v) {
    if (new_orig[v] != kInvalidVertex) {
      index_[new_orig[v]] = static_cast<SlotIndex>(v);
    }
  }

  columns_ = std::make_unique<PropertyColumns>(new_rows);

  stats.kind = RefreshStats::Kind::kIncremental;
  stats.rows_total = new_rows;
  stats.rows_added = new_rows - old_rows;
  stats.indirected_fraction =
      new_rows == 0 ? 0.0
                    : static_cast<double>(out_indirected_ + in_indirected_) /
                          (2.0 * new_rows);
  base_serial_ = g.rearm_mutation_log();
  stats.seconds = timer.seconds();
  if (obs::enabled()) {
    SnapshotSeries& ss = snapshot_series();
    ss.refreshes_incremental.inc();
    ss.rows_rewritten.add(stats.rows_rewritten);
    ss.edges_copied.add(stats.edges_copied);
    ss.arena_bytes.set(arena_.bytes_allocated());
  }
  last_refresh_ = stats;
  return last_refresh_;
}

std::size_t GraphSnapshot::footprint_bytes() const {
  return arena_.bytes_allocated() +
         index_.size() * (sizeof(VertexId) + sizeof(SlotIndex) +
                          2 * sizeof(void*)) +
         out_indirect_.capacity() + in_indirect_.capacity() +
         (columns_ != nullptr ? columns_->footprint_bytes() : 0);
}

bool structurally_equal(const GraphSnapshot& a, const GraphSnapshot& b,
                        std::string* why) {
  auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  if (a.row_count() != b.row_count()) {
    return fail("row_count " + std::to_string(a.row_count()) + " vs " +
                std::to_string(b.row_count()));
  }
  if (a.num_vertices() != b.num_vertices()) {
    return fail("num_vertices " + std::to_string(a.num_vertices()) +
                " vs " + std::to_string(b.num_vertices()));
  }
  if (a.num_edges() != b.num_edges()) {
    return fail("num_edges " + std::to_string(a.num_edges()) + " vs " +
                std::to_string(b.num_edges()));
  }
  for (std::uint32_t v = 0; v < a.row_count(); ++v) {
    const std::string row = "row " + std::to_string(v);
    if (a.id_of(v) != b.id_of(v)) {
      return fail(row + ": orig id " + std::to_string(a.id_of(v)) +
                  " vs " + std::to_string(b.id_of(v)));
    }
    if (a.out_degree(v) != b.out_degree(v)) {
      return fail(row + ": out degree " + std::to_string(a.out_degree(v)) +
                  " vs " + std::to_string(b.out_degree(v)));
    }
    if (a.in_degree(v) != b.in_degree(v)) {
      return fail(row + ": in degree " + std::to_string(a.in_degree(v)) +
                  " vs " + std::to_string(b.in_degree(v)));
    }
    // Decode through the iteration templates, not raw row pointers:
    // compressed rows have no raw storage, and this must compare snapshots
    // across different layouts (the layout-parity tests rely on it).
    const std::uint64_t odeg = a.out_degree(v);
    std::vector<std::uint32_t> ta, tb;
    std::vector<double> wa, wb;
    ta.reserve(odeg);
    tb.reserve(odeg);
    wa.reserve(odeg);
    wb.reserve(odeg);
    a.for_each_out(v, [&](std::uint32_t t, double w) {
      ta.push_back(t);
      wa.push_back(w);
    });
    b.for_each_out(v, [&](std::uint32_t t, double w) {
      tb.push_back(t);
      wb.push_back(w);
    });
    for (std::uint64_t e = 0; e < odeg; ++e) {
      if (ta[e] != tb[e]) {
        return fail(row + ": out edge " + std::to_string(e) + " target " +
                    std::to_string(ta[e]) + " vs " + std::to_string(tb[e]));
      }
      if (std::memcmp(&wa[e], &wb[e], sizeof(double)) != 0) {
        return fail(row + ": out edge " + std::to_string(e) +
                    " weight bits differ");
      }
    }
    const std::uint64_t ideg = a.in_degree(v);
    std::vector<std::uint32_t> sa, sb;
    sa.reserve(ideg);
    sb.reserve(ideg);
    a.for_each_in(v, [&](std::uint32_t s) { sa.push_back(s); });
    b.for_each_in(v, [&](std::uint32_t s) { sb.push_back(s); });
    for (std::uint64_t e = 0; e < ideg; ++e) {
      if (sa[e] != sb[e]) {
        return fail(row + ": in edge " + std::to_string(e) + " source " +
                    std::to_string(sa[e]) + " vs " + std::to_string(sb[e]));
      }
    }
    if (a.is_live(v)) {
      const VertexId id = a.id_of(v);
      if (a.slot_of(id) != v || b.slot_of(id) != v) {
        return fail(row + ": id index maps " + std::to_string(id) +
                    " to rows " + std::to_string(a.slot_of(id)) + " / " +
                    std::to_string(b.slot_of(id)));
      }
    }
  }
  return true;
}

}  // namespace graphbig::graph
