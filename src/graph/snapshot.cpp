#include "graph/snapshot.h"

#include <cstring>

namespace graphbig::graph {

namespace {

template <typename T>
T* arena_array(platform::Arena& arena, std::size_t count) {
  static_assert(std::is_trivially_destructible_v<T>);
  T* p = static_cast<T*>(arena.allocate(count * sizeof(T), alignof(T)));
  std::memset(static_cast<void*>(p), 0, count * sizeof(T));
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// PropertyColumns
// ---------------------------------------------------------------------------

std::int64_t* PropertyColumns::int_col(PropKey key) {
  auto& slot = int_cols_[slot_for(key)];
  if (std::int64_t* col = slot.load(std::memory_order_acquire)) return col;
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  if (std::int64_t* col = slot.load(std::memory_order_relaxed)) return col;
  auto storage = std::make_unique<std::int64_t[]>(rows_);
  std::int64_t* col = storage.get();
  int_storage_.push_back(std::move(storage));
  slot.store(col, std::memory_order_release);
  return col;
}

double* PropertyColumns::dbl_col(PropKey key) {
  auto& slot = dbl_cols_[slot_for(key)];
  if (double* col = slot.load(std::memory_order_acquire)) return col;
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  if (double* col = slot.load(std::memory_order_relaxed)) return col;
  auto storage = std::make_unique<double[]>(rows_);
  double* col = storage.get();
  dbl_storage_.push_back(std::move(storage));
  slot.store(col, std::memory_order_release);
  return col;
}

std::size_t PropertyColumns::footprint_bytes() const {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  return int_storage_.size() * rows_ * sizeof(std::int64_t) +
         dbl_storage_.size() * rows_ * sizeof(double);
}

// ---------------------------------------------------------------------------
// GraphSnapshot
// ---------------------------------------------------------------------------

GraphSnapshot GraphSnapshot::freeze(const PropertyGraph& g) {
  GraphSnapshot snap;

  // Pass 1: dense ids for live slots, order-preserving.
  const std::size_t slots = g.slot_count();
  std::vector<SlotIndex> slot_of_dense;
  std::vector<std::uint32_t> dense_of_slot(slots, ~std::uint32_t{0});
  slot_of_dense.reserve(g.num_vertices());
  for (SlotIndex s = 0; s < slots; ++s) {
    if (g.vertex_at(s) != nullptr) {
      dense_of_slot[s] = static_cast<std::uint32_t>(slot_of_dense.size());
      slot_of_dense.push_back(s);
    }
  }
  const auto n = static_cast<std::uint32_t>(slot_of_dense.size());
  snap.num_vertices_ = n;

  auto* out_ptr = arena_array<std::uint64_t>(snap.arena_, n + 1);
  auto* in_ptr = arena_array<std::uint64_t>(snap.arena_, n + 1);
  auto* orig_id = arena_array<VertexId>(snap.arena_, n);

  // Pass 2: degrees from both adjacency directions.
  for (std::uint32_t v = 0; v < n; ++v) {
    const VertexRecord* rec = g.vertex_at(slot_of_dense[v]);
    orig_id[v] = rec->id;
    out_ptr[v + 1] = out_ptr[v] + rec->out.size();
    in_ptr[v + 1] = in_ptr[v] + rec->in.size();
  }
  snap.num_edges_ = out_ptr[n];

  auto* out_dst = arena_array<std::uint32_t>(snap.arena_, out_ptr[n]);
  auto* out_weight = arena_array<double>(snap.arena_, out_ptr[n]);
  auto* in_src = arena_array<std::uint32_t>(snap.arena_, in_ptr[n]);

  // Pass 3: copy adjacency verbatim (per-vertex edge order preserved), the
  // one place the snapshot pays hash probes for stale slot caches.
  for (std::uint32_t v = 0; v < n; ++v) {
    const VertexRecord* rec = g.vertex_at(slot_of_dense[v]);
    std::uint64_t pos = out_ptr[v];
    g.for_each_out_edge(*rec,
                        [&](const EdgeRecord& e, SlotIndex tslot) {
                          out_dst[pos] = dense_of_slot[tslot];
                          out_weight[pos] = e.weight;
                          ++pos;
                        });
    pos = in_ptr[v];
    g.for_each_in_neighbor(*rec, [&](VertexId, SlotIndex sslot) {
      in_src[pos++] = dense_of_slot[sslot];
    });
  }

  snap.out_ptr_ = out_ptr;
  snap.out_dst_ = out_dst;
  snap.out_weight_ = out_weight;
  snap.in_ptr_ = in_ptr;
  snap.in_src_ = in_src;
  snap.orig_id_ = orig_id;

  snap.index_.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    snap.index_[orig_id[v]] = static_cast<SlotIndex>(v);
  }
  snap.columns_ = std::make_unique<PropertyColumns>(n);
  return snap;
}

std::size_t GraphSnapshot::footprint_bytes() const {
  return arena_.bytes_allocated() +
         index_.size() * (sizeof(VertexId) + sizeof(SlotIndex) +
                          2 * sizeof(void*)) +
         columns_->footprint_bytes();
}

}  // namespace graphbig::graph
