#include "graph/disk_graph.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "graph/snap_format_internal.h"

namespace graphbig::graph {

DiskGraph::DiskGraph(const std::string& path, const DiskGraphOptions& opts)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw snap::SnapError("cannot open snapshot file '" + path + "'");
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0 || st.st_size <= 0) {
    ::close(fd_);
    fd_ = -1;
    throw snap::SnapError("cannot stat snapshot file '" + path + "'");
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  void* m = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (m == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    throw snap::SnapError("cannot mmap snapshot file '" + path + "'");
  }
  map_ = static_cast<const std::uint8_t*>(m);

  // Header/table validation plus the full structural pass over the
  // resident sections — O(rows), no payload bytes touched. The
  // destructor does not run if the constructor throws, so unmap here.
  snapdetail::Header h;
  std::vector<snapdetail::SectionEntry> table;
  try {
    snapdetail::parse_header(map_, map_bytes_, map_bytes_, &h, &table);
    snapdetail::validate_structure(h, table, map_);
  } catch (...) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
    ::close(fd_);
    throw;
  }
  info_ = snapdetail::make_info(h, table.data());
  layout_ = info_.layout;

  auto sec = [&](snap::SectionId id) -> const snapdetail::SectionEntry& {
    return table[static_cast<std::uint32_t>(id) - 1];
  };
  auto resident = [&](snap::SectionId id) {
    return map_ + sec(id).offset;
  };
  using snap::SectionId;
  out_ptr_ = reinterpret_cast<const std::uint64_t*>(resident(SectionId::kOutPtr));
  in_ptr_ = reinterpret_cast<const std::uint64_t*>(resident(SectionId::kInPtr));
  orig_id_ = reinterpret_cast<const VertexId*>(resident(SectionId::kOrigId));
  out_off_ =
      reinterpret_cast<const std::uint64_t*>(resident(SectionId::kOutRowOff));
  wrow_off_ =
      reinterpret_cast<const std::uint64_t*>(resident(SectionId::kOutWrowOff));
  in_off_ =
      reinterpret_cast<const std::uint64_t*>(resident(SectionId::kInRowOff));
  odst_off_ = sec(SectionId::kOutDst).offset;
  wsec_off_ = sec(SectionId::kOutWeight).offset;
  isrc_off_ = sec(SectionId::kInSrc).offset;
  oenc_off_ = sec(SectionId::kOutEnc).offset;
  ienc_off_ = sec(SectionId::kInEnc).offset;

  const std::uint64_t* id_map =
      reinterpret_cast<const std::uint64_t*>(resident(SectionId::kIdMap));
  index_.reserve(info_.num_vertices);
  for (std::uint32_t i = 0; i < info_.num_vertices; ++i) {
    index_.emplace(id_map[2 * i],
                   static_cast<SlotIndex>(id_map[2 * i + 1]));
  }

  BufferPoolOptions popts;
  popts.pages = opts.pool_pages;
  popts.page_bytes = opts.page_bytes;
  pool_ = std::make_unique<BufferPool>(map_, map_bytes_, popts);

  // Persisted property columns (resident sections; typically empty for a
  // freshly saved snapshot) seed the mutable column state, mirroring
  // load_snapshot().
  columns_ = std::make_unique<PropertyColumns>(info_.row_count);
  auto load_cols = [&](SectionId id, auto ensure) {
    const std::uint8_t* p = resident(id);
    std::uint32_t ncols;
    std::memcpy(&ncols, p, 4);
    p += 8;
    for (std::uint32_t c = 0; c < ncols; ++c) {
      std::uint32_t slot;
      std::memcpy(&slot, p, 4);
      p += 8;
      std::memcpy(ensure(slot), p, std::size_t{info_.row_count} * 8);
      p += std::size_t{info_.row_count} * 8;
    }
  };
  load_cols(SectionId::kColInt,
            [&](std::uint32_t slot) { return columns_->ensure_int(slot); });
  load_cols(SectionId::kColDbl,
            [&](std::uint32_t slot) { return columns_->ensure_double(slot); });
}

DiskGraph::~DiskGraph() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void DiskGraph::reset_columns() {
  columns_ = std::make_unique<PropertyColumns>(info_.row_count);
}

}  // namespace graphbig::graph
