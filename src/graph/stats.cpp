#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "platform/rng.h"

namespace graphbig::graph {

DegreeStats degree_stats(const Csr& csr) {
  DegreeStats s;
  if (csr.num_vertices == 0) return s;
  std::vector<std::uint64_t> degrees(csr.num_vertices);
  double sum = 0.0;
  s.min = ~std::uint64_t{0};
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    degrees[v] = csr.degree(v);
    sum += static_cast<double>(degrees[v]);
    s.min = std::min(s.min, degrees[v]);
    s.max = std::max(s.max, degrees[v]);
  }
  s.mean = sum / csr.num_vertices;
  double var = 0.0;
  for (const auto d : degrees) {
    const double delta = static_cast<double>(d) - s.mean;
    var += delta * delta;
  }
  s.variance = var / csr.num_vertices;
  s.cv = s.mean > 0 ? std::sqrt(s.variance) / s.mean : 0.0;

  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, csr.num_vertices / 100);
  std::uint64_t top_edges = 0;
  for (std::size_t i = 0; i < top; ++i) top_edges += degrees[i];
  s.top1pct_edge_share =
      csr.num_edges > 0
          ? static_cast<double>(top_edges) / static_cast<double>(csr.num_edges)
          : 0.0;
  return s;
}

ComponentStats component_stats(const Csr& csr) {
  const Csr undirected = symmetrize(csr);
  ComponentStats stats;
  std::vector<bool> visited(undirected.num_vertices, false);
  std::vector<std::uint32_t> queue;
  for (std::uint32_t root = 0; root < undirected.num_vertices; ++root) {
    if (visited[root]) continue;
    ++stats.num_components;
    std::size_t size = 0;
    queue.clear();
    queue.push_back(root);
    visited[root] = true;
    while (!queue.empty()) {
      const std::uint32_t v = queue.back();
      queue.pop_back();
      ++size;
      for (std::uint64_t e = undirected.row_ptr[v];
           e < undirected.row_ptr[v + 1]; ++e) {
        const std::uint32_t d = undirected.col[e];
        if (!visited[d]) {
          visited[d] = true;
          queue.push_back(d);
        }
      }
    }
    stats.largest = std::max(stats.largest, size);
  }
  return stats;
}

double estimate_mean_path_length(const Csr& csr, int samples,
                                 std::uint64_t seed) {
  if (csr.num_vertices == 0) return 0.0;
  const Csr undirected = symmetrize(csr);
  platform::Xoshiro256 rng(seed);
  double total = 0.0;
  std::uint64_t reached = 0;
  std::vector<std::int32_t> depth(undirected.num_vertices);
  for (int s = 0; s < samples; ++s) {
    const auto root =
        static_cast<std::uint32_t>(rng.bounded(undirected.num_vertices));
    std::fill(depth.begin(), depth.end(), -1);
    std::queue<std::uint32_t> q;
    q.push(root);
    depth[root] = 0;
    while (!q.empty()) {
      const std::uint32_t v = q.front();
      q.pop();
      for (std::uint64_t e = undirected.row_ptr[v];
           e < undirected.row_ptr[v + 1]; ++e) {
        const std::uint32_t d = undirected.col[e];
        if (depth[d] < 0) {
          depth[d] = depth[v] + 1;
          total += depth[d];
          ++reached;
          q.push(d);
        }
      }
    }
  }
  return reached > 0 ? total / static_cast<double>(reached) : 0.0;
}

double estimate_two_hop_size(const Csr& csr, int samples,
                             std::uint64_t seed) {
  if (csr.num_vertices == 0) return 0.0;
  platform::Xoshiro256 rng(seed);
  double total = 0.0;
  std::vector<std::uint32_t> marked;
  std::vector<bool> seen(csr.num_vertices, false);
  for (int s = 0; s < samples; ++s) {
    const auto root =
        static_cast<std::uint32_t>(rng.bounded(csr.num_vertices));
    marked.clear();
    auto mark = [&](std::uint32_t v) {
      if (!seen[v]) {
        seen[v] = true;
        marked.push_back(v);
      }
    };
    for (std::uint64_t e = csr.row_ptr[root]; e < csr.row_ptr[root + 1];
         ++e) {
      const std::uint32_t n1 = csr.col[e];
      mark(n1);
      for (std::uint64_t e2 = csr.row_ptr[n1]; e2 < csr.row_ptr[n1 + 1];
           ++e2) {
        mark(csr.col[e2]);
      }
    }
    total += static_cast<double>(marked.size());
    for (const auto v : marked) seen[v] = false;
  }
  return total / samples;
}

std::vector<std::uint64_t> degree_histogram(const Csr& csr,
                                            std::uint64_t max_degree) {
  std::vector<std::uint64_t> hist(max_degree + 1, 0);
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    ++hist[std::min<std::uint64_t>(csr.degree(v), max_degree)];
  }
  return hist;
}

}  // namespace graphbig::graph
