#include "graph/snap_format.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>

#include "graph/snap_format_internal.h"
#include "graph/varint.h"
#include "platform/arena.h"

namespace graphbig::graph {

namespace snapdetail {

inline std::uint64_t align_up(std::uint64_t v) {
  return (v + snap::kSectionAlign - 1) & ~(snap::kSectionAlign - 1);
}

// Bytes a delta-varint row blob occupies: drive the streaming decoder
// once per edge and measure the cursor (the format stores no per-row
// length; degree comes from the prefix array).
inline std::size_t encoded_row_bytes(const std::uint8_t* enc,
                                     std::uint64_t degree) {
  varint::RowDecoder dec(enc);
  for (std::uint64_t e = 0; e < degree; ++e) dec.next();
  return static_cast<std::size_t>(dec.cursor() - enc);
}

template <typename T>
T* arena_array(platform::Arena& arena, std::size_t count) {
  return static_cast<T*>(arena.allocate(count * sizeof(T), alignof(T)));
}

using namespace snap;

SnapInfo make_info(const Header& h, const SectionEntry* table) {
  SnapInfo info;
  info.version = h.version;
  info.row_count = h.row_count;
  info.num_vertices = h.num_vertices;
  info.num_edges = h.num_edges;
  info.num_in_edges = h.num_in_edges;
  info.layout.order = static_cast<VertexOrder>(h.order);
  info.layout.compress = h.compress != 0;
  info.layout.hot_row_degree = h.hot_row_degree;
  info.file_bytes = h.file_bytes;
  info.file_checksum = h.file_checksum;
  info.sections.reserve(kSectionCount);
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    info.sections.push_back(
        {table[i].id, table[i].offset, table[i].bytes, table[i].checksum});
  }
  return info;
}

void parse_header(const std::uint8_t* data, std::uint64_t avail,
                  std::uint64_t actual_bytes, Header* h,
                  std::vector<SectionEntry>* table) {
  if (avail < kHeaderBytes) {
    throw SnapError("snapshot header: file too small (" +
                    std::to_string(actual_bytes) + " bytes)");
  }
  std::memcpy(h, data, sizeof(Header));
  if (h->magic != kMagic) {
    throw SnapError("snapshot header: bad magic (not a graphbig.snap file)");
  }
  if (h->version != kVersion) {
    throw SnapError("snapshot header: unsupported format version " +
                    std::to_string(h->version) + " (expected " +
                    std::to_string(kVersion) + ")");
  }
  if (h->header_bytes != kHeaderBytes || h->section_count != kSectionCount ||
      h->order > static_cast<std::uint32_t>(VertexOrder::kRcm) ||
      h->compress > 1 || h->num_vertices > h->row_count) {
    throw SnapError("snapshot header: malformed field values");
  }
  if (avail < kTableOffset + kTableBytes) {
    throw SnapError("section table: truncated file");
  }
  table->resize(kSectionCount);
  std::memcpy(table->data(), data + kTableOffset, kTableBytes);
  if (fnv1a(table->data(), kTableBytes) != h->table_checksum) {
    throw SnapError("section table: checksum mismatch");
  }
  std::uint64_t fc = fnv1a(data, offsetof(Header, table_checksum));
  fc = fnv1a(table->data(), kTableBytes, fc);
  if (fc != h->file_checksum) {
    throw SnapError("snapshot file checksum mismatch (header corrupt)");
  }
  std::uint64_t prev_end = kFirstSectionOffset;
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    const SectionEntry& e = (*table)[i];
    const auto id = static_cast<SectionId>(i + 1);
    if (e.id != i + 1) {
      throw SnapError(sec_msg(id, "unexpected section id in table"));
    }
    if (e.offset % kSectionAlign != 0 || e.offset < prev_end) {
      throw SnapError(sec_msg(id, "misaligned or overlapping offset"));
    }
    if (e.offset + e.bytes > actual_bytes) {
      throw SnapError(sec_msg(id, "extends past end of file (truncated?)"));
    }
    prev_end = e.offset + e.bytes;
  }
  if (h->file_bytes != actual_bytes) {
    throw SnapError("snapshot file: size mismatch (header says " +
                    std::to_string(h->file_bytes) + " bytes, file has " +
                    std::to_string(actual_bytes) + ")");
  }
}

void validate_structure(const Header& h,
                        const std::vector<SectionEntry>& table,
                        const std::uint8_t* buf) {
  auto sec = [&](SectionId id) -> const SectionEntry& {
    return table[static_cast<std::uint32_t>(id) - 1];
  };
  auto expect_bytes = [&](SectionId id, std::uint64_t want) {
    if (sec(id).bytes != want) {
      throw SnapError(sec_msg(id, "unexpected section size"));
    }
  };
  const std::uint64_t rows = h.row_count;
  expect_bytes(SectionId::kOutPtr, (rows + 1) * 8);
  expect_bytes(SectionId::kInPtr, (rows + 1) * 8);
  expect_bytes(SectionId::kOrigId, rows * 8);
  expect_bytes(SectionId::kOutRowOff, rows * 8);
  expect_bytes(SectionId::kOutWrowOff, rows * 8);
  expect_bytes(SectionId::kInRowOff, rows * 8);
  expect_bytes(SectionId::kOutWeight, h.num_edges * 8);
  expect_bytes(SectionId::kIdMap, std::uint64_t{h.num_vertices} * 16);
  expect_bytes(SectionId::kLayoutStats, 24);
  if (sec(SectionId::kOutDst).bytes % 4 != 0 ||
      sec(SectionId::kInSrc).bytes % 4 != 0) {
    throw SnapError(sec_msg(SectionId::kOutDst, "unexpected section size"));
  }
  if (h.compress == 0 && (sec(SectionId::kOutEnc).bytes != 0 ||
                          sec(SectionId::kInEnc).bytes != 0)) {
    throw SnapError(
        sec_msg(SectionId::kOutEnc, "encoded rows in uncompressed snapshot"));
  }

  auto check_prefix = [&](SectionId id, std::uint64_t total) {
    const auto* p =
        reinterpret_cast<const std::uint64_t*>(buf + sec(id).offset);
    if (p[0] != 0) throw SnapError(sec_msg(id, "prefix does not start at 0"));
    for (std::uint64_t r = 0; r < rows; ++r) {
      if (p[r + 1] < p[r]) {
        throw SnapError(sec_msg(id, "non-monotone degree prefix"));
      }
    }
    if (p[rows] != total) {
      throw SnapError(sec_msg(id, "prefix total disagrees with header"));
    }
  };
  check_prefix(SectionId::kOutPtr, h.num_edges);
  check_prefix(SectionId::kInPtr, h.num_in_edges);

  auto check_offsets = [&](SectionId off_id, SectionId ptr_id,
                           SectionId raw_id, SectionId enc_id) {
    const auto* off =
        reinterpret_cast<const std::uint64_t*>(buf + sec(off_id).offset);
    const auto* ptr =
        reinterpret_cast<const std::uint64_t*>(buf + sec(ptr_id).offset);
    const std::uint64_t raw_elems = sec(raw_id).bytes / 4;
    const std::uint64_t enc_bytes = sec(enc_id).bytes;
    for (std::uint64_t r = 0; r < rows; ++r) {
      const std::uint64_t deg = ptr[r + 1] - ptr[r];
      if (deg == 0) continue;
      if ((off[r] & kEncodedRowBit) != 0) {
        if (h.compress == 0) {
          throw SnapError(
              sec_msg(off_id, "encoded row in uncompressed snapshot"));
        }
        if ((off[r] & ~kEncodedRowBit) >= enc_bytes) {
          throw SnapError(sec_msg(off_id, "encoded-row offset out of range"));
        }
      } else if (off[r] + deg > raw_elems) {
        throw SnapError(sec_msg(off_id, "raw-row offset out of range"));
      }
    }
  };
  check_offsets(SectionId::kOutRowOff, SectionId::kOutPtr, SectionId::kOutDst,
                SectionId::kOutEnc);
  check_offsets(SectionId::kInRowOff, SectionId::kInPtr, SectionId::kInSrc,
                SectionId::kInEnc);
  {
    const auto* woff = reinterpret_cast<const std::uint64_t*>(
        buf + sec(SectionId::kOutWrowOff).offset);
    const auto* optr = reinterpret_cast<const std::uint64_t*>(
        buf + sec(SectionId::kOutPtr).offset);
    for (std::uint64_t r = 0; r < rows; ++r) {
      const std::uint64_t deg = optr[r + 1] - optr[r];
      if (deg > 0 && woff[r] + deg > h.num_edges) {
        throw SnapError(
            sec_msg(SectionId::kOutWrowOff, "weight offset out of range"));
      }
    }
  }
  {
    const auto* ids = reinterpret_cast<const std::uint64_t*>(
        buf + sec(SectionId::kIdMap).offset);
    const auto* orig = reinterpret_cast<const std::uint64_t*>(
        buf + sec(SectionId::kOrigId).offset);
    std::uint64_t live = 0;
    for (std::uint64_t r = 0; r < rows; ++r) {
      if (orig[r] != static_cast<std::uint64_t>(kInvalidVertex)) ++live;
    }
    if (live != h.num_vertices) {
      throw SnapError(
          sec_msg(SectionId::kOrigId, "live-row count disagrees with header"));
    }
    std::uint64_t prev_row = 0;
    for (std::uint32_t i = 0; i < h.num_vertices; ++i) {
      const std::uint64_t id = ids[2 * i];
      const std::uint64_t row = ids[2 * i + 1];
      if (row >= rows || (i > 0 && row <= prev_row) || orig[row] != id) {
        throw SnapError(sec_msg(SectionId::kIdMap, "malformed id map entry"));
      }
      prev_row = row;
    }
  }
  auto check_cols = [&](SectionId id) {
    const SectionEntry& e = sec(id);
    if (e.bytes < 8) throw SnapError(sec_msg(id, "unexpected section size"));
    std::uint32_t ncols;
    std::memcpy(&ncols, buf + e.offset, 4);
    if (ncols > PropertyColumns::max_column_slots() ||
        e.bytes != 8 + std::uint64_t{ncols} * (8 + rows * 8)) {
      throw SnapError(sec_msg(id, "unexpected section size"));
    }
    const std::uint8_t* p = buf + e.offset + 8;
    std::uint32_t prev_slot = 0;
    for (std::uint32_t c = 0; c < ncols; ++c) {
      std::uint32_t slot;
      std::memcpy(&slot, p, 4);
      if (slot >= PropertyColumns::max_column_slots() ||
          (c > 0 && slot <= prev_slot)) {
        throw SnapError(sec_msg(id, "malformed column slot"));
      }
      prev_slot = slot;
      p += 8 + rows * 8;
    }
  };
  check_cols(SectionId::kColInt);
  check_cols(SectionId::kColDbl);
}

}  // namespace snapdetail

/// Friend of GraphSnapshot: reconstructs the arena arrays and per-row
/// pointer tables directly from a validated file image.
class SnapshotSerializer {
 public:
  static GraphSnapshot build(const snapdetail::Header& h,
                             const snapdetail::SectionEntry* table,
                             const std::uint8_t* buf);
};

GraphSnapshot SnapshotSerializer::build(const snapdetail::Header& h,
                                        const snapdetail::SectionEntry* table,
                                        const std::uint8_t* buf) {
  using snap::SectionId;
  auto sec = [&](SectionId id) -> const snapdetail::SectionEntry& {
    return table[static_cast<std::uint32_t>(id) - 1];
  };
  auto data = [&](SectionId id) -> const std::uint8_t* {
    return buf + sec(id).offset;
  };

  GraphSnapshot s;
  s.layout_.order = static_cast<VertexOrder>(h.order);
  s.layout_.compress = h.compress != 0;
  s.layout_.hot_row_degree = h.hot_row_degree;
  s.num_vertices_ = h.num_vertices;
  s.row_count_ = h.row_count;
  s.num_edges_ = h.num_edges;

  const std::uint32_t rows = h.row_count;
  const bool compress = s.layout_.compress;

  // Resident copies of every array, one arena allocation each — payloads
  // land contiguously in file order, which is what makes a re-save of a
  // loaded snapshot byte-identical (save orders rows by storage address).
  auto* out_ptr = snapdetail::arena_array<std::uint64_t>(s.arena_, rows + 1);
  std::memcpy(out_ptr, data(SectionId::kOutPtr), (rows + 1) * 8);
  auto* in_ptr = snapdetail::arena_array<std::uint64_t>(s.arena_, rows + 1);
  std::memcpy(in_ptr, data(SectionId::kInPtr), (rows + 1) * 8);
  auto* orig = snapdetail::arena_array<VertexId>(s.arena_, rows);
  std::memcpy(orig, data(SectionId::kOrigId), std::size_t{rows} * 8);

  const std::uint64_t out_raw_elems = sec(SectionId::kOutDst).bytes / 4;
  const std::uint64_t in_raw_elems = sec(SectionId::kInSrc).bytes / 4;
  auto* out_dst =
      snapdetail::arena_array<std::uint32_t>(s.arena_, out_raw_elems);
  std::memcpy(out_dst, data(SectionId::kOutDst), out_raw_elems * 4);
  auto* out_w = snapdetail::arena_array<double>(s.arena_, h.num_edges);
  std::memcpy(out_w, data(SectionId::kOutWeight), h.num_edges * 8);
  auto* in_src = snapdetail::arena_array<std::uint32_t>(s.arena_, in_raw_elems);
  std::memcpy(in_src, data(SectionId::kInSrc), in_raw_elems * 4);

  std::uint8_t* out_enc = nullptr;
  std::uint8_t* in_enc = nullptr;
  if (sec(SectionId::kOutEnc).bytes > 0) {
    out_enc = snapdetail::arena_array<std::uint8_t>(
        s.arena_, sec(SectionId::kOutEnc).bytes);
    std::memcpy(out_enc, data(SectionId::kOutEnc),
                sec(SectionId::kOutEnc).bytes);
  }
  if (sec(SectionId::kInEnc).bytes > 0) {
    in_enc = snapdetail::arena_array<std::uint8_t>(
        s.arena_, sec(SectionId::kInEnc).bytes);
    std::memcpy(in_enc, data(SectionId::kInEnc), sec(SectionId::kInEnc).bytes);
  }

  // Publish every row through the indirection tables (the uniform path;
  // a freshly frozen natural-raw snapshot reads identically whether rows
  // come from the base arrays or tables pointing at the same addresses).
  auto* out_rows =
      snapdetail::arena_array<const std::uint32_t*>(s.arena_, rows);
  auto* out_wrows = snapdetail::arena_array<const double*>(s.arena_, rows);
  auto* in_rows = snapdetail::arena_array<const std::uint32_t*>(s.arena_, rows);
  const std::uint8_t** out_enc_rows =
      compress ? snapdetail::arena_array<const std::uint8_t*>(s.arena_, rows)
               : nullptr;
  const std::uint8_t** in_enc_rows =
      compress ? snapdetail::arena_array<const std::uint8_t*>(s.arena_, rows)
               : nullptr;

  const auto* out_off =
      reinterpret_cast<const std::uint64_t*>(data(SectionId::kOutRowOff));
  const auto* wrow_off =
      reinterpret_cast<const std::uint64_t*>(data(SectionId::kOutWrowOff));
  const auto* in_off =
      reinterpret_cast<const std::uint64_t*>(data(SectionId::kInRowOff));
  for (std::uint32_t r = 0; r < rows; ++r) {
    const std::uint64_t odeg = out_ptr[r + 1] - out_ptr[r];
    const std::uint64_t ideg = in_ptr[r + 1] - in_ptr[r];
    out_wrows[r] = out_w + (odeg > 0 ? wrow_off[r] : 0);
    if (out_enc_rows != nullptr) out_enc_rows[r] = nullptr;
    if (in_enc_rows != nullptr) in_enc_rows[r] = nullptr;
    if (odeg > 0 && (out_off[r] & snap::kEncodedRowBit) != 0) {
      out_rows[r] = nullptr;
      out_enc_rows[r] = out_enc + (out_off[r] & ~snap::kEncodedRowBit);
    } else {
      out_rows[r] = out_dst + (odeg > 0 ? out_off[r] : 0);
    }
    if (ideg > 0 && (in_off[r] & snap::kEncodedRowBit) != 0) {
      in_rows[r] = nullptr;
      in_enc_rows[r] = in_enc + (in_off[r] & ~snap::kEncodedRowBit);
    } else {
      in_rows[r] = in_src + (ideg > 0 ? in_off[r] : 0);
    }
  }

  s.out_ptr_ = out_ptr;
  s.in_ptr_ = in_ptr;
  s.orig_id_ = orig;
  s.out_dst_ = out_dst;
  s.out_weight_ = out_w;
  s.in_src_ = in_src;
  s.out_rows_ = out_rows;
  s.out_wrows_ = out_wrows;
  s.in_rows_ = in_rows;
  s.out_enc_rows_ = out_enc_rows;
  s.in_enc_rows_ = in_enc_rows;
  s.out_indirect_.assign(rows, 0);
  s.in_indirect_.assign(rows, 0);
  s.out_indirected_ = 0;
  s.in_indirected_ = 0;

  const auto* id_map =
      reinterpret_cast<const std::uint64_t*>(data(SectionId::kIdMap));
  s.index_.reserve(h.num_vertices);
  for (std::uint32_t i = 0; i < h.num_vertices; ++i) {
    s.index_.emplace(id_map[2 * i],
                     static_cast<SlotIndex>(id_map[2 * i + 1]));
  }

  s.columns_ = std::make_unique<PropertyColumns>(rows);
  auto load_cols = [&](SectionId id, auto ensure) {
    const std::uint8_t* p = data(id);
    std::uint32_t ncols;
    std::memcpy(&ncols, p, 4);
    p += 8;
    for (std::uint32_t c = 0; c < ncols; ++c) {
      std::uint32_t slot;
      std::memcpy(&slot, p, 4);
      p += 8;
      std::memcpy(ensure(slot), p, std::size_t{rows} * 8);
      p += std::size_t{rows} * 8;
    }
  };
  load_cols(SectionId::kColInt,
            [&](std::uint32_t slot) { return s.columns_->ensure_int(slot); });
  load_cols(SectionId::kColDbl, [&](std::uint32_t slot) {
    return s.columns_->ensure_double(slot);
  });

  const std::uint8_t* ls = data(SectionId::kLayoutStats);
  std::memcpy(&s.layout_stats_.rows_compressed, ls, 4);
  std::memcpy(&s.layout_stats_.rows_raw, ls + 4, 4);
  std::memcpy(&s.layout_stats_.adjacency_bytes_raw, ls + 8, 8);
  std::memcpy(&s.layout_stats_.adjacency_bytes_stored, ls + 16, 8);

  // No freeze base: a refresh() against a live graph takes the guarded
  // full-rebuild fallback rather than composing a foreign mutation log.
  s.base_serial_ = 0;
  return s;
}

namespace snap {

namespace {

using snapdetail::Header;
using snapdetail::SectionEntry;
using snapdetail::make_info;
using snapdetail::parse_header;
using snapdetail::sec_msg;
using snapdetail::validate_structure;

/// Recomputes every section's payload checksum against the table.
void verify_sections(const std::uint8_t* data,
                     const std::vector<SectionEntry>& table) {
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    const SectionEntry& e = table[i];
    if (fnv1a(data + e.offset, e.bytes) != e.checksum) {
      throw SnapError(
          sec_msg(static_cast<SectionId>(i + 1), "checksum mismatch"));
    }
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SnapError("cannot open snapshot file '" + path + "'");
  }
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> buf(sz < 0 ? 0 : static_cast<std::size_t>(sz));
  if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
    std::fclose(f);
    throw SnapError("short read on snapshot file '" + path + "'");
  }
  std::fclose(f);
  return buf;
}

template <typename T>
void append_raw(std::vector<std::uint8_t>& out, const T* data,
                std::size_t count) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + count * sizeof(T));
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

const char* section_name(std::uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kOutPtr: return "out_ptr";
    case SectionId::kInPtr: return "in_ptr";
    case SectionId::kOrigId: return "orig_id";
    case SectionId::kOutRowOff: return "out_row_off";
    case SectionId::kOutWrowOff: return "out_wrow_off";
    case SectionId::kInRowOff: return "in_row_off";
    case SectionId::kOutDst: return "out_dst";
    case SectionId::kOutWeight: return "out_weight";
    case SectionId::kInSrc: return "in_src";
    case SectionId::kOutEnc: return "out_enc";
    case SectionId::kInEnc: return "in_enc";
    case SectionId::kIdMap: return "id_map";
    case SectionId::kColInt: return "col_int";
    case SectionId::kColDbl: return "col_dbl";
    case SectionId::kLayoutStats: return "layout_stats";
  }
  return "unknown";
}

const SectionInfo* SnapInfo::section(SectionId id) const {
  for (const SectionInfo& s : sections) {
    if (s.id == static_cast<std::uint32_t>(id)) return &s;
  }
  return nullptr;
}

SnapInfo save_snapshot(const GraphSnapshot& s, const std::string& path) {
  if (s.out_ptr() == nullptr) {
    throw SnapError("cannot save a default-constructed (never frozen) "
                    "snapshot");
  }
  const std::uint32_t rows = s.row_count();
  const std::uint64_t num_edges = s.num_edges();
  const std::uint64_t num_in_edges = s.in_ptr()[rows];

  // Rows grouped by storage class, each group ordered by in-memory
  // address (row index tiebreak is unreachable — storage never aliases):
  // payloads are written in placement order, so the freeze-time physical
  // layout round-trips and re-saving a loaded snapshot is byte-identical.
  struct RowRef {
    std::uintptr_t addr;
    std::uint32_t row;
    bool operator<(const RowRef& o) const {
      return addr != o.addr ? addr < o.addr : row < o.row;
    }
  };
  std::vector<RowRef> raw_out, enc_out, w_out, raw_in, enc_in;
  for (std::uint32_t r = 0; r < rows; ++r) {
    if (s.out_degree(r) > 0) {
      w_out.push_back(
          {reinterpret_cast<std::uintptr_t>(s.out_weight_row(r)), r});
      if (const std::uint8_t* enc = s.out_enc_row(r)) {
        enc_out.push_back({reinterpret_cast<std::uintptr_t>(enc), r});
      } else {
        raw_out.push_back({reinterpret_cast<std::uintptr_t>(s.out_row(r)), r});
      }
    }
    if (s.in_degree(r) > 0) {
      if (const std::uint8_t* enc = s.in_enc_row(r)) {
        enc_in.push_back({reinterpret_cast<std::uintptr_t>(enc), r});
      } else {
        raw_in.push_back({reinterpret_cast<std::uintptr_t>(s.in_row(r)), r});
      }
    }
  }
  for (auto* v : {&raw_out, &enc_out, &w_out, &raw_in, &enc_in}) {
    std::sort(v->begin(), v->end());
  }

  std::vector<std::uint64_t> out_off(rows, 0), wrow_off(rows, 0),
      in_off(rows, 0);
  std::array<std::vector<std::uint8_t>, kSectionCount> secs;
  auto sec = [&](SectionId id) -> std::vector<std::uint8_t>& {
    return secs[static_cast<std::uint32_t>(id) - 1];
  };

  append_raw(sec(SectionId::kOutPtr), s.out_ptr(), rows + 1);
  append_raw(sec(SectionId::kInPtr), s.in_ptr(), rows + 1);
  append_raw(sec(SectionId::kOrigId), s.orig_id(), rows);

  std::uint64_t cur = 0;
  for (const RowRef& rr : raw_out) {
    out_off[rr.row] = cur;
    const auto deg = s.out_degree(rr.row);
    append_raw(sec(SectionId::kOutDst), s.out_row(rr.row), deg);
    cur += deg;
  }
  cur = 0;
  for (const RowRef& rr : enc_out) {
    out_off[rr.row] = kEncodedRowBit | cur;
    const std::size_t bytes = snapdetail::encoded_row_bytes(
        s.out_enc_row(rr.row), s.out_degree(rr.row));
    append_raw(sec(SectionId::kOutEnc), s.out_enc_row(rr.row), bytes);
    cur += bytes;
  }
  cur = 0;
  for (const RowRef& rr : w_out) {
    wrow_off[rr.row] = cur;
    const auto deg = s.out_degree(rr.row);
    append_raw(sec(SectionId::kOutWeight), s.out_weight_row(rr.row), deg);
    cur += deg;
  }
  cur = 0;
  for (const RowRef& rr : raw_in) {
    in_off[rr.row] = cur;
    const auto deg = s.in_degree(rr.row);
    append_raw(sec(SectionId::kInSrc), s.in_row(rr.row), deg);
    cur += deg;
  }
  cur = 0;
  for (const RowRef& rr : enc_in) {
    in_off[rr.row] = kEncodedRowBit | cur;
    const std::size_t bytes = snapdetail::encoded_row_bytes(
        s.in_enc_row(rr.row), s.in_degree(rr.row));
    append_raw(sec(SectionId::kInEnc), s.in_enc_row(rr.row), bytes);
    cur += bytes;
  }
  append_raw(sec(SectionId::kOutRowOff), out_off.data(), rows);
  append_raw(sec(SectionId::kOutWrowOff), wrow_off.data(), rows);
  append_raw(sec(SectionId::kInRowOff), in_off.data(), rows);

  for (std::uint32_t r = 0; r < rows; ++r) {
    if (!s.is_live(r)) continue;
    const std::uint64_t id = s.id_of(r);
    const std::uint64_t row = r;
    append_raw(sec(SectionId::kIdMap), &id, 1);
    append_raw(sec(SectionId::kIdMap), &row, 1);
  }

  auto dump_cols = [&](SectionId id, auto materialized) {
    std::vector<std::uint8_t>& out = sec(id);
    std::uint32_t ncols = 0;
    for (std::size_t slot = 0; slot < PropertyColumns::max_column_slots();
         ++slot) {
      if (materialized(slot) != nullptr) ++ncols;
    }
    const std::uint32_t pad = 0;
    append_raw(out, &ncols, 1);
    append_raw(out, &pad, 1);
    for (std::size_t slot = 0; slot < PropertyColumns::max_column_slots();
         ++slot) {
      const auto* col = materialized(slot);
      if (col == nullptr) continue;
      const auto slot32 = static_cast<std::uint32_t>(slot);
      append_raw(out, &slot32, 1);
      append_raw(out, &pad, 1);
      append_raw(out, col, rows);
    }
  };
  const PropertyColumns& cols = s.columns();
  dump_cols(SectionId::kColInt,
            [&](std::size_t slot) { return cols.materialized_int(slot); });
  dump_cols(SectionId::kColDbl,
            [&](std::size_t slot) { return cols.materialized_double(slot); });

  {
    std::vector<std::uint8_t>& out = sec(SectionId::kLayoutStats);
    const LayoutStats& ls = s.layout_stats();
    append_raw(out, &ls.rows_compressed, 1);
    append_raw(out, &ls.rows_raw, 1);
    append_raw(out, &ls.adjacency_bytes_raw, 1);
    append_raw(out, &ls.adjacency_bytes_stored, 1);
  }

  Header h;
  h.magic = kMagic;
  h.version = kVersion;
  h.header_bytes = kHeaderBytes;
  h.section_count = kSectionCount;
  h.order = static_cast<std::uint32_t>(s.layout().order);
  h.compress = s.layout().compress ? 1 : 0;
  h.hot_row_degree = s.layout().hot_row_degree;
  h.row_count = rows;
  h.num_vertices = s.num_vertices();
  h.num_edges = num_edges;
  h.num_in_edges = num_in_edges;

  std::vector<SectionEntry> table(kSectionCount);
  std::uint64_t pos = snapdetail::kTableOffset + snapdetail::kTableBytes;
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    pos = snapdetail::align_up(pos);
    table[i].id = i + 1;
    table[i].offset = pos;
    table[i].bytes = secs[i].size();
    table[i].checksum = fnv1a(secs[i].data(), secs[i].size());
    pos += secs[i].size();
  }
  h.file_bytes = pos;
  h.table_checksum = fnv1a(table.data(), snapdetail::kTableBytes);
  std::uint64_t fc = fnv1a(&h, offsetof(Header, table_checksum));
  fc = fnv1a(table.data(), snapdetail::kTableBytes, fc);
  h.file_checksum = fc;

  std::vector<std::uint8_t> file(pos, 0);
  std::memcpy(file.data(), &h, sizeof(Header));
  std::memcpy(file.data() + snapdetail::kTableOffset, table.data(),
              snapdetail::kTableBytes);
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    std::memcpy(file.data() + table[i].offset, secs[i].data(),
                secs[i].size());
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw SnapError("cannot create snapshot file '" + path + "'");
  }
  const bool ok =
      std::fwrite(file.data(), 1, file.size(), f) == file.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    throw SnapError("short write on snapshot file '" + path + "'");
  }
  return make_info(h, table.data());
}

GraphSnapshot load_snapshot(const std::string& path, SnapInfo* info) {
  const std::vector<std::uint8_t> buf = read_file(path);
  Header h;
  std::vector<SectionEntry> table;
  parse_header(buf.data(), buf.size(), buf.size(), &h, &table);
  verify_sections(buf.data(), table);
  validate_structure(h, table, buf.data());
  if (info != nullptr) *info = make_info(h, table.data());
  return SnapshotSerializer::build(h, table.data(), buf.data());
}

SnapInfo inspect_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SnapError("cannot open snapshot file '" + path + "'");
  }
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  const std::uint64_t actual = sz < 0 ? 0 : static_cast<std::uint64_t>(sz);
  std::vector<std::uint8_t> head(
      static_cast<std::size_t>(std::min<std::uint64_t>(
          actual, snapdetail::kTableOffset + snapdetail::kTableBytes)));
  const bool ok =
      head.empty() ||
      std::fread(head.data(), 1, head.size(), f) == head.size();
  std::fclose(f);
  if (!ok) {
    throw SnapError("short read on snapshot file '" + path + "'");
  }
  Header h;
  std::vector<SectionEntry> table;
  parse_header(head.data(), head.size(), actual, &h, &table);
  return make_info(h, table.data());
}

SnapInfo validate_snapshot(const std::string& path) {
  const std::vector<std::uint8_t> buf = read_file(path);
  Header h;
  std::vector<SectionEntry> table;
  parse_header(buf.data(), buf.size(), buf.size(), &h, &table);
  verify_sections(buf.data(), table);
  validate_structure(h, table, buf.data());
  return make_info(h, table.data());
}

}  // namespace snap
}  // namespace graphbig::graph
