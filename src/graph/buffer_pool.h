// Fixed-size page cache over a read-only byte range (the mmap'd snapshot
// file DiskGraph serves traversals from).
//
// The pool is the out-of-core memory budget: a fixed number of frames,
// each page_bytes wide, cached with CLOCK second-chance eviction. Readers
// pin(page) and hold the returned PageRef for exactly as long as they
// dereference into the frame; a pinned frame is never evicted. Concurrent
// pins of the same absent page coalesce into one load: the first pinner
// marks the frame loading and copies outside the lock, later pinners wait
// on a condvar.
//
// Deadlock freedom: when every frame is pinned or loading, pin() does not
// block on an eviction that can never happen — it falls back to a
// transient overflow read (a private heap copy owned by the PageRef,
// counted in stats().overflow_reads). Traversal holds at most two pins at
// once (neighbor stream + weight stream), so any pool of >= 2 pages per
// concurrent reader runs overflow-free; a 1-page pool merely degrades to
// direct reads instead of deadlocking.
//
// Counters (hits / misses / evictions / overflow_reads) surface both as
// pool-local Stats for tests and as diskpool.* obs metrics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace graphbig::graph {

struct BufferPoolOptions {
  /// Frames resident at once; the pool's entire memory budget.
  std::uint32_t pages = 64;
  /// Page width. Power of two, multiple of 64, so 4/8-byte elements in
  /// the 64-byte-aligned snapshot sections never straddle a page.
  std::uint32_t page_bytes = 1 << 16;
};

class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t overflow_reads = 0;
  };

  /// Serves pages of [base, base + bytes) — typically an mmap'd file.
  /// The range must outlive the pool.
  BufferPool(const std::uint8_t* base, std::size_t bytes,
             const BufferPoolOptions& opts);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pinned view of one page. The frame stays resident until destruction;
  /// movable so readers can slide a window along a section.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& o) noexcept { *this = std::move(o); }
    PageRef& operator=(PageRef&& o) noexcept;
    ~PageRef() { release(); }
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;

    const std::uint8_t* data() const { return data_; }
    /// Valid bytes in this page (short only for the file's last page).
    std::size_t size() const { return size_; }

   private:
    friend class BufferPool;
    void release();
    BufferPool* pool_ = nullptr;
    std::int64_t frame_ = -1;  // -1: empty or overflow-backed
    std::unique_ptr<std::uint8_t[]> overflow_;
    const std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
  };

  /// Pins page `page` (file offset page * page_bytes), loading it into a
  /// frame if absent. Never fails for in-range pages; out-of-range pages
  /// are a programming error (asserted).
  PageRef pin(std::uint64_t page);

  std::uint32_t page_bytes() const { return page_bytes_; }
  std::uint32_t pages() const { return static_cast<std::uint32_t>(frames_.size()); }
  std::uint64_t page_count() const { return page_count_; }

  Stats stats() const;

 private:
  struct Frame {
    std::uint64_t page = ~0ull;
    std::uint32_t pins = 0;
    bool ref = false;      // CLOCK second-chance bit
    bool loading = false;  // copy in flight outside the lock
    std::unique_ptr<std::uint8_t[]> data;
  };

  std::size_t page_size(std::uint64_t page) const;
  void unpin(std::size_t frame);

  const std::uint8_t* base_;
  std::size_t bytes_;
  std::uint32_t page_bytes_;
  std::uint64_t page_count_;

  mutable std::mutex mutex_;
  std::condition_variable load_cv_;
  std::vector<Frame> frames_;
  std::unordered_map<std::uint64_t, std::size_t> resident_;
  std::size_t clock_hand_ = 0;
  Stats stats_;
};

}  // namespace graphbig::graph
