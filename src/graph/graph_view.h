// GraphView: one traversal interface over three graph representations.
//
// The analytic workloads traverse graphs exclusively through this view,
// which dispatches each call to one of
//
//   * the dynamic vertex-centric PropertyGraph (pointer-chasing adjacency,
//     slot-cached target resolution, per-vertex PropertyMaps),
//   * a frozen GraphSnapshot (contiguous out/in-CSR, dense property
//     columns), or
//   * an out-of-core DiskGraph (the same CSR served from an mmap'd
//     graphbig.snap.v1 file through a fixed-size buffer pool).
//
// The backend branch happens once per traversal call, not per edge, so the
// inner loops stay tight on both paths. All indices exposed by the view
// are SlotIndex values on BOTH paths: the snapshot keeps one row per
// dynamic slot (dead slots become dead rows), so the index spaces are
// identical — tombstones or not — and workloads produce bit-identical
// results on either backend, including after churn followed by an
// incremental refresh. That is the dynamic-vs-frozen parity the
// representation ablation, snapshot tests, and churn harness assert — and
// because DiskGraph preserves the snapshot's row space and edge order
// byte-for-byte, the same parity holds for the disk backend (the
// disk-vs-frozen checksum gate).
#pragma once

#include <cstdint>

#include "graph/disk_graph.h"
#include "graph/property_graph.h"
#include "graph/snapshot.h"

namespace graphbig::graph {

class GraphView {
 public:
  GraphView() = default;
  explicit GraphView(PropertyGraph& g) : graph_(&g) {}
  explicit GraphView(const GraphSnapshot& s) : snap_(&s) {}
  explicit GraphView(const DiskGraph& d) : disk_(&d) {}

  /// Frozen view whose algorithm state lives in a caller-owned column set
  /// instead of the snapshot's shared one. This is the serving path:
  /// concurrent queries pin ONE immutable snapshot and each brings private
  /// columns, so set_int/set_double never race across requests. `columns`
  /// must be sized to s.row_count() and outlive the view.
  GraphView(const GraphSnapshot& s, PropertyColumns* columns)
      : snap_(&s), cols_(columns) {}
  GraphView(const DiskGraph& d, PropertyColumns* columns)
      : disk_(&d), cols_(columns) {}

  /// True for the CSR-backed backends (snapshot or disk): slot space is
  /// row space, algorithm state lives in dense columns.
  bool frozen() const { return snap_ != nullptr || disk_ != nullptr; }
  /// True when edges are served out-of-core through a buffer pool.
  bool disk() const { return disk_ != nullptr; }

  /// Size of the slot space: slot table size (dynamic, tombstones
  /// included) or row count (frozen, dead rows included — the snapshot
  /// keeps one row per dynamic slot). Workloads size their per-slot state
  /// arrays from this.
  std::size_t slot_count() const {
    if (snap_ != nullptr) return snap_->row_count();
    if (disk_ != nullptr) return disk_->row_count();
    return graph_->slot_count();
  }

  std::size_t num_vertices() const {
    if (snap_ != nullptr) return snap_->num_vertices();
    if (disk_ != nullptr) return disk_->num_vertices();
    return graph_->num_vertices();
  }
  std::size_t num_edges() const {
    if (snap_ != nullptr) return snap_->num_edges();
    if (disk_ != nullptr) return disk_->num_edges();
    return graph_->num_edges();
  }

  /// True when slot s holds a live vertex (frozen dead rows mirror the
  /// dynamic tombstones they froze from).
  bool is_live(SlotIndex s) const {
    if (snap_ != nullptr) return s < snap_->row_count() && snap_->is_live(s);
    if (disk_ != nullptr) return s < disk_->row_count() && disk_->is_live(s);
    return graph_->vertex_at(s) != nullptr;
  }

  VertexId id_of(SlotIndex s) const {
    if (snap_ != nullptr) return snap_->id_of(s);
    if (disk_ != nullptr) return disk_->id_of(s);
    const VertexRecord* v = graph_->vertex_at(s);
    return v == nullptr ? kInvalidVertex : v->id;
  }

  /// Slot of a live vertex id, kInvalidSlot when absent.
  SlotIndex slot_of(VertexId id) const {
    if (snap_ != nullptr) return snap_->slot_of(id);
    if (disk_ != nullptr) return disk_->slot_of(id);
    return graph_->slot_of(id);
  }

  std::size_t out_degree(SlotIndex s) const {
    if (snap_ != nullptr) return snap_->out_degree(s);
    if (disk_ != nullptr) return disk_->out_degree(s);
    const VertexRecord* v = graph_->vertex_at(s);
    return v == nullptr ? 0 : v->out.size();
  }
  std::size_t in_degree(SlotIndex s) const {
    if (snap_ != nullptr) return snap_->in_degree(s);
    if (disk_ != nullptr) return disk_->in_degree(s);
    const VertexRecord* v = graph_->vertex_at(s);
    return v == nullptr ? 0 : v->in.size();
  }

  /// Out + in degree: the undirected view used by kCore/GColor/CComp.
  std::size_t undirected_degree(SlotIndex s) const {
    return out_degree(s) + in_degree(s);
  }

  /// Calls fn(SlotIndex target, double weight) for each out-edge of s, in
  /// identical edge order on both backends.
  template <typename Fn>
  void for_each_out(SlotIndex s, Fn&& fn) const {
    if (snap_ != nullptr) {
      snap_->for_each_out(s, fn);
      return;
    }
    if (disk_ != nullptr) {
      disk_->for_each_out(s, fn);
      return;
    }
    const VertexRecord* v = graph_->vertex_at(s);
    static_cast<const PropertyGraph*>(graph_)->for_each_out_edge(
        *v, [&](const EdgeRecord& e, SlotIndex t) { fn(t, e.weight); });
  }

  /// Calls fn(SlotIndex source) for each in-edge of s, in identical order
  /// on both backends (the frozen in-CSR mirrors the dynamic in-lists).
  template <typename Fn>
  void for_each_in(SlotIndex s, Fn&& fn) const {
    if (snap_ != nullptr) {
      snap_->for_each_in(s, fn);
      return;
    }
    if (disk_ != nullptr) {
      disk_->for_each_in(s, fn);
      return;
    }
    const VertexRecord* v = graph_->vertex_at(s);
    static_cast<const PropertyGraph*>(graph_)->for_each_in_neighbor(
        *v, [&](VertexId, SlotIndex src) { fn(src); });
  }

  /// Early-terminating in-adjacency scan: fn(SlotIndex source) returns
  /// bool, false stops the walk. This is the pull gap fix: the dynamic
  /// backend's InRecord slot-cache existed but the view offered no way to
  /// abandon an in-list mid-scan, so a Beamer-style pull step (stop at the
  /// first active parent) was impossible through GraphView. Both backends
  /// walk the same in-list order as for_each_in.
  template <typename Fn>
  void for_each_in_until(SlotIndex s, Fn&& fn) const {
    if (snap_ != nullptr) {
      snap_->for_each_in_until(s, fn);
      return;
    }
    if (disk_ != nullptr) {
      disk_->for_each_in_until(s, fn);
      return;
    }
    const VertexRecord* v = graph_->vertex_at(s);
    graph_->for_each_in_neighbor_until(
        *v, [&](VertexId, SlotIndex src) { return fn(src); });
  }

  /// Early-terminating out-adjacency scan: fn(SlotIndex target, double
  /// weight) returns bool, false stops (the symmetric-workload pull side
  /// scans both directions).
  template <typename Fn>
  void for_each_out_until(SlotIndex s, Fn&& fn) const {
    if (snap_ != nullptr) {
      snap_->for_each_out_until(s, fn);
      return;
    }
    if (disk_ != nullptr) {
      disk_->for_each_out_until(s, fn);
      return;
    }
    const VertexRecord* v = graph_->vertex_at(s);
    graph_->for_each_out_edge_until(
        *v,
        [&](const EdgeRecord& e, SlotIndex t) { return fn(t, e.weight); });
  }

  // ---- degree prefix queries (frontier-engine chunking) ----
  //
  // The frozen CSR's row-pointer arrays answer "how many edges do slots
  // [lo, hi) own" in O(1), which is what lets the frontier engine cut a
  // dense sweep into equal-edge-weight chunks without walking degrees.
  // The dynamic backend has no prefix structure; callers fall back to
  // fixed-width chunks plus work stealing.

  bool has_degree_prefix() const { return frozen(); }

  /// Cumulative out-edge count of slots [0, s); frozen/disk only. s may
  /// equal slot_count() (total edge count).
  std::uint64_t out_prefix(SlotIndex s) const {
    return snap_ != nullptr ? snap_->out_ptr()[s] : disk_->out_ptr()[s];
  }
  /// Cumulative in-edge count of slots [0, s); frozen/disk only.
  std::uint64_t in_prefix(SlotIndex s) const {
    return snap_ != nullptr ? snap_->in_ptr()[s] : disk_->in_ptr()[s];
  }

  /// Calls fn(SlotIndex) for every live slot, ascending.
  template <typename Fn>
  void for_each_live_slot(Fn&& fn) const {
    if (frozen()) {
      const std::uint32_t rows = static_cast<std::uint32_t>(slot_count());
      for (std::uint32_t v = 0; v < rows; ++v) {
        if (is_live(v)) fn(static_cast<SlotIndex>(v));
      }
      return;
    }
    const std::size_t slots = graph_->slot_count();
    for (SlotIndex s = 0; s < slots; ++s) {
      if (graph_->vertex_at(s) != nullptr) fn(s);
    }
  }

  // ---- algorithm-state publication ----
  //
  // Dynamic: per-vertex PropertyMap entries. Frozen: dense property
  // columns (zero-initialized, no absence tracking).

  void set_int(SlotIndex s, PropKey key, std::int64_t v) const {
    if (frozen()) {
      frozen_columns().set_int(s, key, v);
    } else {
      graph_->vertex_at(s)->props.set_int(key, v);
    }
  }
  void set_double(SlotIndex s, PropKey key, double v) const {
    if (frozen()) {
      frozen_columns().set_double(s, key, v);
    } else {
      graph_->vertex_at(s)->props.set_double(key, v);
    }
  }
  std::int64_t get_int(SlotIndex s, PropKey key,
                       std::int64_t fallback = 0) const {
    if (frozen()) return frozen_columns().get_int(s, key, fallback);
    const VertexRecord* v = graph_->vertex_at(s);
    return v == nullptr ? fallback : v->props.get_int(key, fallback);
  }
  double get_double(SlotIndex s, PropKey key, double fallback = 0.0) const {
    if (frozen()) return frozen_columns().get_double(s, key, fallback);
    const VertexRecord* v = graph_->vertex_at(s);
    return v == nullptr ? fallback : v->props.get_double(key, fallback);
  }

 private:
  /// Private per-query columns when supplied, the backend's shared set
  /// otherwise.
  PropertyColumns& frozen_columns() const {
    if (cols_ != nullptr) return *cols_;
    return snap_ != nullptr ? snap_->columns() : disk_->columns();
  }

  PropertyGraph* graph_ = nullptr;
  const GraphSnapshot* snap_ = nullptr;
  const DiskGraph* disk_ = nullptr;
  PropertyColumns* cols_ = nullptr;
};

}  // namespace graphbig::graph
