#include "graph/property_graph.h"

#include <algorithm>
#include <atomic>

namespace graphbig::graph {

// ---------------------------------------------------------------------------
// fwk time accounting
// ---------------------------------------------------------------------------

namespace fwk {

namespace {
std::atomic<bool> g_accounting{false};
}  // namespace

void set_accounting(bool enabled) {
  g_accounting.store(enabled, std::memory_order_relaxed);
}

bool accounting_enabled() {
  return g_accounting.load(std::memory_order_relaxed);
}

detail::ThreadState& detail::tls() {
  thread_local ThreadState state;
  return state;
}

std::uint64_t thread_time_ns() { return detail::tls().total_ns; }

void reset_thread_time() { detail::tls().total_ns = 0; }

}  // namespace fwk

// ---------------------------------------------------------------------------
// PropertyGraph
// ---------------------------------------------------------------------------

void PropertyGraph::reserve(std::size_t vertices) {
  slots_.reserve(vertices);
  index_.reserve(vertices);
}

SlotIndex PropertyGraph::find_slot_impl(VertexId id) const {
  trace::block(trace::kBlockFindVertex);
  auto it = index_.find(id);
  trace::read(trace::MemKind::kTopology, &index_, sizeof(void*) * 2);
  trace::branch(trace::kBranchHashProbe, it != index_.end());
  if (it == index_.end()) return kInvalidSlot;
  const auto& slot = slots_[it->second];
  trace::read(trace::MemKind::kTopology, &slot, sizeof(void*));
  VertexRecord* v = slot.get();
  if (v == nullptr || !v->alive) return kInvalidSlot;
  trace::read(trace::MemKind::kTopology, v, sizeof(VertexId) + sizeof(bool));
  return it->second;
}

VertexRecord* PropertyGraph::find_vertex_impl(VertexId id) const {
  const SlotIndex slot = find_slot_impl(id);
  return slot == kInvalidSlot ? nullptr : slots_[slot].get();
}

SlotIndex PropertyGraph::resolve_target_slot_slow(const EdgeRecord& e) const {
  fwk::PrimitiveScope scope;
  ++fwk::slot_cache_stats().misses;
  const SlotIndex slot = find_slot_impl(e.target);
  if (slot != kInvalidSlot) {
    e.slot_cache.store(pack_slot_cache(slot, mutation_epoch_),
                       std::memory_order_relaxed);
  }
  return slot;
}

SlotIndex PropertyGraph::resolve_source_slot_slow(const InRecord& r) const {
  fwk::PrimitiveScope scope;
  ++fwk::slot_cache_stats().misses;
  const SlotIndex slot = find_slot_impl(r.source);
  if (slot != kInvalidSlot) {
    r.slot_cache.store(pack_slot_cache(slot, mutation_epoch_),
                       std::memory_order_relaxed);
  }
  return slot;
}

VertexRecord* PropertyGraph::add_vertex(VertexId id) {
  fwk::PrimitiveScope scope;
  trace::block(trace::kBlockAddVertex);
  if (find_vertex_impl(id) != nullptr) return nullptr;
  auto record = std::make_unique<VertexRecord>();
  record->id = id;
  record->alive = true;
  VertexRecord* raw = record.get();
  const auto slot = static_cast<SlotIndex>(slots_.size());
  slots_.push_back(std::move(record));
  index_[id] = slot;
  ++num_vertices_;
  mlog_.record_add_vertex();
  next_auto_id_ = std::max(next_auto_id_, id + 1);
  trace::write(trace::MemKind::kTopology, raw, sizeof(VertexRecord));
  return raw;
}

VertexRecord* PropertyGraph::add_vertex() { return add_vertex(next_auto_id_); }

VertexRecord* PropertyGraph::find_vertex(VertexId id) {
  fwk::PrimitiveScope scope;
  return find_vertex_impl(id);
}

const VertexRecord* PropertyGraph::find_vertex(VertexId id) const {
  fwk::PrimitiveScope scope;
  return find_vertex_impl(id);
}

bool PropertyGraph::delete_vertex(VertexId id) {
  fwk::PrimitiveScope scope;
  trace::block(trace::kBlockDeleteVertex);
  const SlotIndex vslot = find_slot_impl(id);
  if (vslot == kInvalidSlot) return false;
  VertexRecord* v = slots_[vslot].get();
  mlog_.record_delete_vertex(vslot, id);

  // Remove edges v -> t from every target's incoming list. The unlink
  // scans read every element they step over, and the trace reflects that.
  for (const EdgeRecord& e : v->out) {
    trace::read(trace::MemKind::kTopology, &e, sizeof(EdgeRecord));
    const SlotIndex tslot = find_slot_impl(e.target);
    VertexRecord* t = tslot == kInvalidSlot ? nullptr : slots_[tslot].get();
    if (t != nullptr) {
      mlog_.record_in_touch(tslot);
      auto it = t->in.begin();
      for (; it != t->in.end(); ++it) {
        trace::read(trace::MemKind::kTopology, &*it, sizeof(InRecord));
        trace::alu(1);
        if (it->source == id) break;
      }
      if (it != t->in.end()) {
        *it = std::move(t->in.back());
        t->in.pop_back();
        trace::write(trace::MemKind::kTopology, &*t->in.begin(),
                     sizeof(InRecord));
      }
    }
  }
  num_edges_ -= v->out.size();

  // Remove edges s -> v from every source's outgoing list.
  for (const InRecord& r : v->in) {
    const VertexId src = r.source;
    trace::read(trace::MemKind::kTopology, &r, sizeof(InRecord));
    const SlotIndex sslot = find_slot_impl(src);
    VertexRecord* s = sslot == kInvalidSlot ? nullptr : slots_[sslot].get();
    if (s == nullptr) continue;
    mlog_.record_out_touch(sslot);
    auto it = s->out.begin();
    for (; it != s->out.end(); ++it) {
      trace::read(trace::MemKind::kTopology, &*it, sizeof(EdgeRecord));
      trace::alu(1);
      if (it->target == id) break;
    }
    if (it != s->out.end()) {
      *it = std::move(s->out.back());
      s->out.pop_back();
      --num_edges_;
      trace::write(trace::MemKind::kTopology, s, sizeof(EdgeRecord));
    }
  }

  // Tombstone the slot; the index entry goes away so the id can be reused.
  v->alive = false;
  v->out.clear();
  v->out.shrink_to_fit();
  v->in.clear();
  v->in.shrink_to_fit();
  v->props.clear();
  index_.erase(id);
  --num_vertices_;
  // Tombstoning a slot moves the mutation epoch: every edge slot cache in
  // the graph becomes stale and re-resolves through the id index (then
  // re-stamps) on its next use. Dynamic workloads (GUp/TMorph/GCons) take
  // this conservative fallback; analytics on unmutated graphs never do.
  ++mutation_epoch_;
  trace::write(trace::MemKind::kTopology, v, sizeof(VertexRecord));
  return true;
}

EdgeRecord* PropertyGraph::add_edge(VertexId src, VertexId dst,
                                    double weight) {
  fwk::PrimitiveScope scope;
  trace::block(trace::kBlockAddEdge);
  const SlotIndex sslot = find_slot_impl(src);
  VertexRecord* s = sslot == kInvalidSlot ? nullptr : slots_[sslot].get();
  const SlotIndex dslot = find_slot_impl(dst);
  VertexRecord* d = dslot == kInvalidSlot ? nullptr : slots_[dslot].get();
  if (s == nullptr || d == nullptr) return nullptr;
  if (!allow_parallel_edges_) {
    for (const EdgeRecord& e : s->out) {
      trace::read(trace::MemKind::kTopology, &e, sizeof(EdgeRecord));
      if (e.target == dst) return nullptr;
    }
  }
  // The new edge is born with warm slot caches (both directions) stamped
  // at the current epoch: graphs built by pure insertion traverse without
  // hash probes, forward and reverse.
  s->out.push_back(EdgeRecord(dst, weight, dslot, mutation_epoch_));
  d->in.push_back(InRecord(src, sslot, mutation_epoch_));
  ++num_edges_;
  mlog_.record_add_edge(sslot, dslot);
  trace::write(trace::MemKind::kTopology, &s->out.back(),
               sizeof(EdgeRecord));
  trace::write(trace::MemKind::kTopology, &d->in.back(), sizeof(InRecord));
  return &s->out.back();
}

EdgeRecord* PropertyGraph::find_edge(VertexId src, VertexId dst) {
  return const_cast<EdgeRecord*>(
      static_cast<const PropertyGraph*>(this)->find_edge(src, dst));
}

const EdgeRecord* PropertyGraph::find_edge(VertexId src, VertexId dst) const {
  fwk::PrimitiveScope scope;
  trace::block(trace::kBlockFindVertex);
  const VertexRecord* s = find_vertex_impl(src);
  if (s == nullptr) return nullptr;
  for (const EdgeRecord& e : s->out) {
    trace::read(trace::MemKind::kTopology, &e, sizeof(EdgeRecord));
    trace::branch(trace::kBranchCompare, e.target == dst);
    if (e.target == dst) return &e;
  }
  return nullptr;
}

bool PropertyGraph::delete_edge(VertexId src, VertexId dst) {
  fwk::PrimitiveScope scope;
  trace::block(trace::kBlockDeleteEdge);
  const SlotIndex sslot = find_slot_impl(src);
  const SlotIndex dslot = find_slot_impl(dst);
  VertexRecord* s = sslot == kInvalidSlot ? nullptr : slots_[sslot].get();
  VertexRecord* d = dslot == kInvalidSlot ? nullptr : slots_[dslot].get();
  if (s == nullptr || d == nullptr) return false;
  auto it = std::find_if(s->out.begin(), s->out.end(),
                         [&](const EdgeRecord& e) { return e.target == dst; });
  if (it == s->out.end()) return false;
  mlog_.record_delete_edge(sslot, dslot);
  *it = std::move(s->out.back());
  s->out.pop_back();
  auto in_it =
      std::find_if(d->in.begin(), d->in.end(),
                   [&](const InRecord& r) { return r.source == src; });
  if (in_it != d->in.end()) {
    *in_it = std::move(d->in.back());
    d->in.pop_back();
  }
  --num_edges_;
  trace::write(trace::MemKind::kTopology, s, sizeof(EdgeRecord));
  return true;
}

SlotIndex PropertyGraph::slot_of(VertexId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? kInvalidSlot : it->second;
}

std::size_t PropertyGraph::footprint_bytes() const {
  std::size_t total = slots_.capacity() * sizeof(void*) +
                      index_.size() * (sizeof(VertexId) + sizeof(SlotIndex) +
                                       2 * sizeof(void*));
  for (const auto& slot : slots_) {
    if (slot == nullptr) continue;
    total += sizeof(VertexRecord);
    total += slot->out.capacity() * sizeof(EdgeRecord);
    total += slot->in.capacity() * sizeof(InRecord);
    total += slot->props.footprint_bytes();
    for (const auto& e : slot->out) total += e.props.footprint_bytes();
  }
  return total;
}

bool PropertyGraph::validate() const {
  std::size_t live = 0;
  std::size_t out_edges = 0;
  for (SlotIndex s = 0; s < slots_.size(); ++s) {
    const VertexRecord* v = slots_[s].get();
    if (v == nullptr || !v->alive) continue;
    ++live;
    out_edges += v->out.size();
    auto it = index_.find(v->id);
    if (it == index_.end() || it->second != s) return false;
    // Every outgoing edge must be mirrored in the target's incoming list,
    // and a current-epoch slot cache must point at the target's slot.
    for (const EdgeRecord& e : v->out) {
      const VertexRecord* t = find_vertex_impl(e.target);
      if (t == nullptr) return false;
      const std::uint64_t cached =
          e.slot_cache.load(std::memory_order_relaxed);
      if (static_cast<std::uint32_t>(cached >> 32) == mutation_epoch_) {
        const auto cslot = static_cast<SlotIndex>(cached);
        if (cslot >= slots_.size() || slots_[cslot].get() != t) return false;
      }
      if (std::count_if(t->in.begin(), t->in.end(),
                        [&](const InRecord& r) {
                          return r.source == v->id;
                        }) < 1) {
        return false;
      }
    }
    // Every incoming entry must correspond to a real edge, and a
    // current-epoch in-slot cache must point at the source's slot.
    for (const InRecord& r : v->in) {
      const VertexRecord* srec = find_vertex_impl(r.source);
      if (srec == nullptr) return false;
      const std::uint64_t cached =
          r.slot_cache.load(std::memory_order_relaxed);
      if (static_cast<std::uint32_t>(cached >> 32) == mutation_epoch_) {
        const auto cslot = static_cast<SlotIndex>(cached);
        if (cslot >= slots_.size() || slots_[cslot].get() != srec) {
          return false;
        }
      }
      const bool found = std::any_of(
          srec->out.begin(), srec->out.end(),
          [&](const EdgeRecord& e) { return e.target == v->id; });
      if (!found) return false;
    }
  }
  return live == num_vertices_ && out_edges == num_edges_ &&
         index_.size() == num_vertices_;
}

}  // namespace graphbig::graph
