// Compact mutation log: what changed in a PropertyGraph since the last
// freeze()/refresh(), recorded at primitive granularity so an incremental
// re-freeze (GraphSnapshot::refresh) can rewrite only the CSR rows a
// mutation batch actually touched.
//
// The log is slot-bounded: it only records dirty marks for slots that
// existed when the log was (re)armed (`base_slot_count_`). Slots are never
// reused, so anything at or above the base is a *new* slot the refresh
// discovers by comparing slot counts — which is also what makes
// add-then-delete of a fresh vertex compose to nothing: neither the add
// nor the delete of a new slot leaves a dirty mark behind.
//
// Each rearm stamps the log with the graph's mutation epoch (the same
// counter the EdgeRecord/InRecord slot caches are stamped with) and a
// process-unique serial. A snapshot remembers the serial of the log
// generation it froze against; on refresh, a serial mismatch means the log
// no longer describes "mutations since *this* snapshot" (another freeze
// intervened) and the snapshot falls back to a full rebuild.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace graphbig::graph {

// Redeclarations of the property_graph.h aliases (this header is included
// by property_graph.h, so it cannot include it back).
using VertexId = std::uint64_t;
using SlotIndex = std::uint32_t;

class MutationLog {
 public:
  /// (Re)arms the log: clears all recorded state, snapshots the current
  /// slot count and mutation epoch, and returns a fresh process-unique
  /// serial. Called by GraphSnapshot::freeze and ::refresh.
  std::uint64_t rearm(SlotIndex base_slots, std::uint32_t epoch) {
    static std::atomic<std::uint64_t> next_serial{1};
    dirty_out_.clear();
    dirty_in_.clear();
    deleted_ids_.clear();
    vertices_added_ = 0;
    vertices_deleted_ = 0;
    edges_added_ = 0;
    edges_deleted_ = 0;
    base_slot_count_ = base_slots;
    base_epoch_ = epoch;
    serial_ = next_serial.fetch_add(1, std::memory_order_relaxed);
    armed_ = true;
    return serial_;
  }

  bool armed() const { return armed_; }

  // ---- recording (called by the PropertyGraph primitives) ----

  void record_add_vertex() {
    if (!armed_) return;
    ++vertices_added_;
  }

  /// A live vertex was tombstoned. Old slots record the id so the
  /// snapshot's external-id index can drop it; the slot's own rows go
  /// dirty. New slots never made it into the snapshot, so the delete
  /// composes away entirely.
  void record_delete_vertex(SlotIndex slot, VertexId id) {
    if (!armed_) return;
    ++vertices_deleted_;
    if (slot >= base_slot_count_) return;
    deleted_ids_.push_back(id);
    dirty_out_.insert(slot);
    dirty_in_.insert(slot);
  }

  /// The out-row / in-row of a slot changed (edge added or removed, or a
  /// neighbor was deleted out from under it).
  void record_out_touch(SlotIndex slot) {
    if (!armed_ || slot >= base_slot_count_) return;
    dirty_out_.insert(slot);
  }
  void record_in_touch(SlotIndex slot) {
    if (!armed_ || slot >= base_slot_count_) return;
    dirty_in_.insert(slot);
  }

  void record_add_edge(SlotIndex src, SlotIndex dst) {
    if (!armed_) return;
    ++edges_added_;
    record_out_touch(src);
    record_in_touch(dst);
  }

  void record_delete_edge(SlotIndex src, SlotIndex dst) {
    if (!armed_) return;
    ++edges_deleted_;
    record_out_touch(src);
    record_in_touch(dst);
  }

  // ---- inspection (refresh + tests) ----

  /// True when nothing has been recorded since the last rearm. Note this
  /// is about recorded *marks*: mutations confined to new slots keep the
  /// dirty sets empty but still bump the op counters.
  bool clean() const {
    return dirty_out_.empty() && dirty_in_.empty() && deleted_ids_.empty() &&
           vertices_added_ == 0 && vertices_deleted_ == 0 &&
           edges_added_ == 0 && edges_deleted_ == 0;
  }

  SlotIndex base_slot_count() const { return base_slot_count_; }
  std::uint32_t base_epoch() const { return base_epoch_; }
  std::uint64_t serial() const { return serial_; }

  const std::unordered_set<SlotIndex>& dirty_out() const { return dirty_out_; }
  const std::unordered_set<SlotIndex>& dirty_in() const { return dirty_in_; }
  const std::vector<VertexId>& deleted_ids() const { return deleted_ids_; }

  std::uint64_t vertices_added() const { return vertices_added_; }
  std::uint64_t vertices_deleted() const { return vertices_deleted_; }
  std::uint64_t edges_added() const { return edges_added_; }
  std::uint64_t edges_deleted() const { return edges_deleted_; }

 private:
  bool armed_ = false;
  SlotIndex base_slot_count_ = 0;
  std::uint32_t base_epoch_ = 0;
  std::uint64_t serial_ = 0;  // 0 = never armed; real serials start at 1
  std::unordered_set<SlotIndex> dirty_out_;
  std::unordered_set<SlotIndex> dirty_in_;
  std::vector<VertexId> deleted_ids_;
  std::uint64_t vertices_added_ = 0;
  std::uint64_t vertices_deleted_ = 0;
  std::uint64_t edges_added_ = 0;
  std::uint64_t edges_deleted_ = 0;
};

}  // namespace graphbig::graph
