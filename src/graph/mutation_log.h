// Compact mutation log: what changed in a PropertyGraph since the last
// freeze()/refresh(), recorded at primitive granularity so an incremental
// re-freeze (GraphSnapshot::refresh) can rewrite only the CSR rows a
// mutation batch actually touched.
//
// The log is slot-bounded: it only records dirty marks for slots that
// existed when the log was (re)armed (`base_slot_count_`). Slots are never
// reused, so anything at or above the base is a *new* slot the refresh
// discovers by comparing slot counts — which is also what makes
// add-then-delete of a fresh vertex compose to nothing: neither the add
// nor the delete of a new slot leaves a dirty mark behind.
//
// Each rearm stamps the log with the graph's mutation epoch (the same
// counter the EdgeRecord/InRecord slot caches are stamped with) and a
// process-unique serial. A snapshot remembers the serial of the log
// generation it froze against.
//
// Generation journal: rearm() archives the outgoing generation into a
// bounded history (kMaxHistory most recent), so several snapshots of the
// SAME graph can coexist and each still refresh incrementally:
// compose_since(base_serial) returns the union of every generation's dirty
// marks from that serial forward (dirty slots filtered to the base
// generation's slot bound — anything at or above it is a new slot the
// refresh discovers by slot-count comparison). This is what lets the
// serving layer's snapshot pool lag the writer by a few generations and
// still delta-merge instead of full-rebuilding. Only when the base
// generation has been evicted from the journal (or the serial belongs to a
// different graph — serials are process-unique) does composition fail and
// the snapshot fall back to a full rebuild.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

namespace graphbig::graph {

// Redeclarations of the property_graph.h aliases (this header is included
// by property_graph.h, so it cannot include it back).
using VertexId = std::uint64_t;
using SlotIndex = std::uint32_t;

class MutationLog {
 public:
  /// Archived generations kept for compose_since. Small: each entry holds
  /// the dirty marks of one freeze-to-freeze window (bounded by the churn
  /// batch size in practice).
  static constexpr std::size_t kMaxHistory = 8;

  /// Union of one or more log generations: everything a refresh needs to
  /// delta-merge a snapshot whose base serial is up to kMaxHistory
  /// generations behind the live one.
  struct ComposedDelta {
    /// Slot bound of the BASE generation (the one matching the requested
    /// serial): dirty marks are filtered below it, and it must equal the
    /// refreshing snapshot's row count.
    SlotIndex base_slot_count = 0;
    /// Generations folded in, live one included (1 = snapshot is current).
    std::uint32_t generations = 0;
    std::unordered_set<SlotIndex> dirty_out;
    std::unordered_set<SlotIndex> dirty_in;
    std::vector<VertexId> deleted_ids;
    std::uint64_t vertices_deleted = 0;
  };

  /// (Re)arms the log: archives the outgoing generation into the bounded
  /// journal, clears live state, snapshots the current slot count and
  /// mutation epoch, and returns a fresh process-unique serial. Called by
  /// GraphSnapshot::freeze and ::refresh.
  std::uint64_t rearm(SlotIndex base_slots, std::uint32_t epoch) {
    static std::atomic<std::uint64_t> next_serial{1};
    if (armed_) {
      history_.push_back(Generation{serial_, base_slot_count_,
                                    std::move(dirty_out_),
                                    std::move(dirty_in_),
                                    std::move(deleted_ids_),
                                    vertices_deleted_});
      while (history_.size() > kMaxHistory) history_.pop_front();
    }
    dirty_out_.clear();
    dirty_in_.clear();
    deleted_ids_.clear();
    vertices_added_ = 0;
    vertices_deleted_ = 0;
    edges_added_ = 0;
    edges_deleted_ = 0;
    base_slot_count_ = base_slots;
    base_epoch_ = epoch;
    serial_ = next_serial.fetch_add(1, std::memory_order_relaxed);
    armed_ = true;
    return serial_;
  }

  bool armed() const { return armed_; }

  // ---- recording (called by the PropertyGraph primitives) ----

  void record_add_vertex() {
    if (!armed_) return;
    ++vertices_added_;
  }

  /// A live vertex was tombstoned. Old slots record the id so the
  /// snapshot's external-id index can drop it; the slot's own rows go
  /// dirty. New slots never made it into the snapshot, so the delete
  /// composes away entirely.
  void record_delete_vertex(SlotIndex slot, VertexId id) {
    if (!armed_) return;
    ++vertices_deleted_;
    if (slot >= base_slot_count_) return;
    deleted_ids_.push_back(id);
    dirty_out_.insert(slot);
    dirty_in_.insert(slot);
  }

  /// The out-row / in-row of a slot changed (edge added or removed, or a
  /// neighbor was deleted out from under it).
  void record_out_touch(SlotIndex slot) {
    if (!armed_ || slot >= base_slot_count_) return;
    dirty_out_.insert(slot);
  }
  void record_in_touch(SlotIndex slot) {
    if (!armed_ || slot >= base_slot_count_) return;
    dirty_in_.insert(slot);
  }

  void record_add_edge(SlotIndex src, SlotIndex dst) {
    if (!armed_) return;
    ++edges_added_;
    record_out_touch(src);
    record_in_touch(dst);
  }

  void record_delete_edge(SlotIndex src, SlotIndex dst) {
    if (!armed_) return;
    ++edges_deleted_;
    record_out_touch(src);
    record_in_touch(dst);
  }

  // ---- inspection (refresh + tests) ----

  /// True when nothing has been recorded since the last rearm. Note this
  /// is about recorded *marks*: mutations confined to new slots keep the
  /// dirty sets empty but still bump the op counters.
  bool clean() const {
    return dirty_out_.empty() && dirty_in_.empty() && deleted_ids_.empty() &&
           vertices_added_ == 0 && vertices_deleted_ == 0 &&
           edges_added_ == 0 && edges_deleted_ == 0;
  }

  /// Folds every generation from `base_serial` (inclusive) through the
  /// live one into `out`. Returns false — and leaves `out` untouched —
  /// when the base generation is neither live nor in the journal (evicted,
  /// or a serial from another graph). Dirty marks at or above the base
  /// generation's slot bound are dropped: those slots are new relative to
  /// the base snapshot and the refresh rewrites them wholesale anyway.
  bool compose_since(std::uint64_t base_serial, ComposedDelta* out) const {
    if (!armed_ || base_serial == 0) return false;
    std::size_t first = history_.size();  // history_.size() == live only
    if (base_serial != serial_) {
      while (first > 0 && history_[first - 1].serial != base_serial) --first;
      if (first == 0) return false;
      --first;  // history_[first] is the base generation
    }
    ComposedDelta d;
    d.base_slot_count = first < history_.size()
                            ? history_[first].base_slot_count
                            : base_slot_count_;
    auto fold = [&](const std::unordered_set<SlotIndex>& dout,
                    const std::unordered_set<SlotIndex>& din,
                    const std::vector<VertexId>& dels,
                    std::uint64_t vdel) {
      for (const SlotIndex s : dout) {
        if (s < d.base_slot_count) d.dirty_out.insert(s);
      }
      for (const SlotIndex s : din) {
        if (s < d.base_slot_count) d.dirty_in.insert(s);
      }
      d.deleted_ids.insert(d.deleted_ids.end(), dels.begin(), dels.end());
      d.vertices_deleted += vdel;
      ++d.generations;
    };
    for (std::size_t i = first; i < history_.size(); ++i) {
      fold(history_[i].dirty_out, history_[i].dirty_in,
           history_[i].deleted_ids, history_[i].vertices_deleted);
    }
    fold(dirty_out_, dirty_in_, deleted_ids_, vertices_deleted_);
    *out = std::move(d);
    return true;
  }

  /// Archived generations currently held (tests).
  std::size_t history_size() const { return history_.size(); }

  SlotIndex base_slot_count() const { return base_slot_count_; }
  std::uint32_t base_epoch() const { return base_epoch_; }
  std::uint64_t serial() const { return serial_; }

  const std::unordered_set<SlotIndex>& dirty_out() const { return dirty_out_; }
  const std::unordered_set<SlotIndex>& dirty_in() const { return dirty_in_; }
  const std::vector<VertexId>& deleted_ids() const { return deleted_ids_; }

  std::uint64_t vertices_added() const { return vertices_added_; }
  std::uint64_t vertices_deleted() const { return vertices_deleted_; }
  std::uint64_t edges_added() const { return edges_added_; }
  std::uint64_t edges_deleted() const { return edges_deleted_; }

 private:
  struct Generation {
    std::uint64_t serial = 0;
    SlotIndex base_slot_count = 0;
    std::unordered_set<SlotIndex> dirty_out;
    std::unordered_set<SlotIndex> dirty_in;
    std::vector<VertexId> deleted_ids;
    std::uint64_t vertices_deleted = 0;
  };

  bool armed_ = false;
  SlotIndex base_slot_count_ = 0;
  std::uint32_t base_epoch_ = 0;
  std::uint64_t serial_ = 0;  // 0 = never armed; real serials start at 1
  std::unordered_set<SlotIndex> dirty_out_;
  std::unordered_set<SlotIndex> dirty_in_;
  std::vector<VertexId> deleted_ids_;
  std::uint64_t vertices_added_ = 0;
  std::uint64_t vertices_deleted_ = 0;
  std::uint64_t edges_added_ = 0;
  std::uint64_t edges_deleted_ = 0;
  std::deque<Generation> history_;
};

}  // namespace graphbig::graph
