#include "graph/csr.h"

#include <algorithm>
#include <numeric>

namespace graphbig::graph {

Csr build_csr(const PropertyGraph& graph) {
  Csr csr;

  // Pass 1: assign dense ids to live vertices in slot order.
  std::vector<SlotIndex> slot_of_dense;
  std::vector<std::uint32_t> dense_of_slot(graph.slot_count(),
                                           ~std::uint32_t{0});
  slot_of_dense.reserve(graph.num_vertices());
  for (SlotIndex s = 0; s < graph.slot_count(); ++s) {
    if (graph.vertex_at(s) != nullptr) {
      dense_of_slot[s] = static_cast<std::uint32_t>(slot_of_dense.size());
      slot_of_dense.push_back(s);
    }
  }
  csr.num_vertices = static_cast<std::uint32_t>(slot_of_dense.size());
  csr.orig_id.resize(csr.num_vertices);
  csr.row_ptr.assign(csr.num_vertices + 1, 0);

  // Pass 2: count degrees.
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    const VertexRecord* rec = graph.vertex_at(slot_of_dense[v]);
    csr.orig_id[v] = rec->id;
    csr.row_ptr[v + 1] = rec->out.size();
  }
  std::partial_sum(csr.row_ptr.begin(), csr.row_ptr.end(),
                   csr.row_ptr.begin());
  csr.num_edges = csr.row_ptr.back();
  csr.col.resize(csr.num_edges);
  csr.weight.resize(csr.num_edges);

  // Pass 3: fill columns, then sort each row by destination.
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    const VertexRecord* rec = graph.vertex_at(slot_of_dense[v]);
    std::uint64_t pos = csr.row_ptr[v];
    for (const EdgeRecord& e : rec->out) {
      const SlotIndex tslot = graph.slot_of(e.target);
      csr.col[pos] = dense_of_slot[tslot];
      csr.weight[pos] = static_cast<float>(e.weight);
      ++pos;
    }
    // Sort the row (keeping weights aligned) by destination id.
    const std::uint64_t lo = csr.row_ptr[v];
    const std::uint64_t hi = csr.row_ptr[v + 1];
    std::vector<std::uint64_t> order(hi - lo);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::uint64_t a,
                                              std::uint64_t b) {
      return csr.col[lo + a] < csr.col[lo + b];
    });
    std::vector<std::uint32_t> col_tmp(hi - lo);
    std::vector<float> w_tmp(hi - lo);
    for (std::uint64_t i = 0; i < order.size(); ++i) {
      col_tmp[i] = csr.col[lo + order[i]];
      w_tmp[i] = csr.weight[lo + order[i]];
    }
    std::copy(col_tmp.begin(), col_tmp.end(), csr.col.begin() + lo);
    std::copy(w_tmp.begin(), w_tmp.end(), csr.weight.begin() + lo);
  }
  return csr;
}

Csr build_csr(const GraphSnapshot& snapshot) {
  Csr csr;

  // The snapshot keeps one row per dynamic slot (dead rows included, and
  // possibly indirected after a refresh); the device CSR is dense over
  // live vertices, so compact rows and remap targets through row order.
  const std::uint32_t rows = snapshot.row_count();
  std::vector<std::uint32_t> dense_of_row(rows, ~std::uint32_t{0});
  std::vector<std::uint32_t> row_of_dense;
  row_of_dense.reserve(snapshot.num_vertices());
  for (std::uint32_t v = 0; v < rows; ++v) {
    if (snapshot.is_live(v)) {
      dense_of_row[v] = static_cast<std::uint32_t>(row_of_dense.size());
      row_of_dense.push_back(v);
    }
  }
  csr.num_vertices = static_cast<std::uint32_t>(row_of_dense.size());
  csr.num_edges = snapshot.num_edges();
  csr.orig_id.resize(csr.num_vertices);
  csr.row_ptr.assign(csr.num_vertices + 1, 0);
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    csr.orig_id[v] = snapshot.id_of(row_of_dense[v]);
    csr.row_ptr[v + 1] =
        csr.row_ptr[v] + snapshot.out_degree(row_of_dense[v]);
  }
  csr.col.resize(csr.num_edges);
  csr.weight.resize(csr.num_edges);

  // The snapshot keeps the dynamic graph's per-vertex edge order; the
  // device CSR wants rows sorted by destination (the TC intersection
  // kernels require it). Rows are decoded through for_each_out rather
  // than out_row(): a compressed (layouted) snapshot has no raw storage
  // for encoded rows, and the stored values are logical slot ids under
  // every layout.
  std::vector<std::uint32_t> dst;
  std::vector<double> w;
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    const std::uint32_t row = row_of_dense[v];
    const std::uint64_t lo = csr.row_ptr[v];
    const std::uint64_t deg = csr.row_ptr[v + 1] - lo;
    dst.clear();
    w.clear();
    dst.reserve(deg);
    w.reserve(deg);
    snapshot.for_each_out(row, [&](std::uint32_t t, double weight) {
      dst.push_back(t);
      w.push_back(weight);
    });
    std::vector<std::uint64_t> order(deg);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                return dst[a] < dst[b];
              });
    for (std::uint64_t i = 0; i < deg; ++i) {
      csr.col[lo + i] = dense_of_row[dst[order[i]]];
      csr.weight[lo + i] = static_cast<float>(w[order[i]]);
    }
  }
  return csr;
}

Coo build_coo(const Csr& csr) {
  Coo coo;
  coo.num_vertices = csr.num_vertices;
  coo.src.reserve(csr.num_edges);
  coo.dst.reserve(csr.num_edges);
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    for (std::uint64_t e = csr.row_ptr[v]; e < csr.row_ptr[v + 1]; ++e) {
      coo.src.push_back(v);
      coo.dst.push_back(csr.col[e]);
    }
  }
  return coo;
}

Csr transpose(const Csr& csr) {
  Csr t;
  t.num_vertices = csr.num_vertices;
  t.num_edges = csr.num_edges;
  t.orig_id = csr.orig_id;
  t.row_ptr.assign(t.num_vertices + 1, 0);
  for (std::uint64_t e = 0; e < csr.num_edges; ++e) {
    ++t.row_ptr[csr.col[e] + 1];
  }
  std::partial_sum(t.row_ptr.begin(), t.row_ptr.end(), t.row_ptr.begin());
  t.col.resize(t.num_edges);
  t.weight.resize(t.num_edges);
  std::vector<std::uint64_t> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    for (std::uint64_t e = csr.row_ptr[v]; e < csr.row_ptr[v + 1]; ++e) {
      const std::uint32_t d = csr.col[e];
      t.col[cursor[d]] = v;
      t.weight[cursor[d]] = csr.weight[e];
      ++cursor[d];
    }
  }
  // Rows of the transpose come out sorted because we scan sources in order.
  return t;
}

Csr symmetrize(const Csr& csr) {
  // Collect both directions, dedupe, rebuild.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(csr.num_edges * 2);
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    for (std::uint64_t e = csr.row_ptr[v]; e < csr.row_ptr[v + 1]; ++e) {
      const std::uint32_t d = csr.col[e];
      if (d == v) continue;  // drop self loops in the undirected view
      edges.emplace_back(v, d);
      edges.emplace_back(d, v);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Csr out;
  out.num_vertices = csr.num_vertices;
  out.num_edges = edges.size();
  out.orig_id = csr.orig_id;
  out.row_ptr.assign(out.num_vertices + 1, 0);
  for (const auto& [s, d] : edges) {
    (void)d;
    ++out.row_ptr[s + 1];
  }
  std::partial_sum(out.row_ptr.begin(), out.row_ptr.end(),
                   out.row_ptr.begin());
  out.col.resize(out.num_edges);
  out.weight.assign(out.num_edges, 1.0f);
  std::vector<std::uint64_t> cursor(out.row_ptr.begin(),
                                    out.row_ptr.end() - 1);
  for (const auto& [s, d] : edges) {
    out.col[cursor[s]++] = d;
  }
  return out;
}

bool csr_equal(const Csr& a, const Csr& b) {
  return a.num_vertices == b.num_vertices && a.num_edges == b.num_edges &&
         a.row_ptr == b.row_ptr && a.col == b.col;
}

}  // namespace graphbig::graph
