#include "graph/churn.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace_span.h"

namespace graphbig::graph {

namespace {

struct ChurnSeries {
  obs::Counter batches;
  obs::Counter ops_applied;
  obs::Counter ops_skipped;
};

ChurnSeries& churn_series() {
  static ChurnSeries* s = [] {
    auto& r = obs::MetricsRegistry::instance();
    return new ChurnSeries{
        r.counter("churn.batches"),
        r.counter("churn.ops_applied"),
        r.counter("churn.ops_skipped"),
    };
  }();
  return *s;
}

}  // namespace

const char* to_string(ChurnOp::Kind kind) {
  switch (kind) {
    case ChurnOp::Kind::kAddVertex:
      return "AV";
    case ChurnOp::Kind::kAddEdge:
      return "AE";
    case ChurnOp::Kind::kDeleteEdge:
      return "DE";
    case ChurnOp::Kind::kDeleteVertex:
      return "DV";
  }
  return "??";
}

std::string ChurnBatch::describe(std::size_t max_ops) const {
  std::ostringstream os;
  os << "ops=" << ops.size() << " applied=" << applied
     << " skipped=" << skipped << ": ";
  const std::size_t shown = std::min(max_ops, ops.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const ChurnOp& op = ops[i];
    if (i > 0) os << "; ";
    os << to_string(op.kind) << " " << op.a;
    if (op.kind == ChurnOp::Kind::kAddEdge) {
      os << "->" << op.b << " w=" << op.weight;
    } else if (op.kind == ChurnOp::Kind::kDeleteEdge) {
      os << "->" << op.b;
    }
  }
  if (shown < ops.size()) os << "; ... (+" << ops.size() - shown << " more)";
  return os.str();
}

ChurnDriver::ChurnDriver(const ChurnConfig& config, const PropertyGraph& g)
    : config_(config) {
  live_.reserve(g.num_vertices());
  g.for_each_vertex([&](const VertexRecord& v) {
    pos_[v.id] = live_.size();
    live_.push_back(v.id);
    next_id_ = std::max(next_id_, v.id + 1);
  });
}

void ChurnDriver::track_add(VertexId id) {
  pos_[id] = live_.size();
  live_.push_back(id);
}

void ChurnDriver::track_remove(VertexId id) {
  auto it = pos_.find(id);
  if (it == pos_.end()) return;
  const std::size_t idx = it->second;
  pos_[live_.back()] = idx;
  live_[idx] = live_.back();
  live_.pop_back();
  pos_.erase(it);
}

ChurnBatch ChurnDriver::apply_batch(PropertyGraph& g) {
  obs::ObsSpan span("churn_batch");
  ChurnBatch batch;
  batch.serial = next_serial_++;
  // Split stream: each batch gets an independent generator derived from
  // (seed, serial), so the op sequence is pinned by the serial alone.
  platform::SplitMix64 mix(config_.seed ^
                           (batch.serial * 0x9e3779b97f4a7c15ull));
  platform::Xoshiro256 rng(mix.next());
  batch.ops.reserve(config_.ops);
  const double total =
      config_.add_vertex_weight + config_.add_edge_weight +
      config_.delete_edge_weight + config_.delete_vertex_weight;
  const double av = config_.add_vertex_weight / total;
  const double ae = av + config_.add_edge_weight / total;
  const double de = ae + config_.delete_edge_weight / total;

  for (std::size_t i = 0; i < config_.ops; ++i) {
    const double r = rng.uniform();
    ChurnOp op;
    if (r < av || live_.size() < 2) {
      op.kind = ChurnOp::Kind::kAddVertex;
      op.a = next_id_++;
    } else if (r < ae) {
      op.kind = ChurnOp::Kind::kAddEdge;
      op.a = live_[rng.bounded(live_.size())];
      op.b = live_[rng.bounded(live_.size())];
      op.weight = rng.uniform(0.5, 2.0);
    } else if (r < de) {
      // Deleting an edge needs an existing one: probe a few live sources
      // for a non-empty out-list, else degrade to an add so the batch
      // keeps its op count.
      op.kind = ChurnOp::Kind::kAddVertex;
      op.a = next_id_;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const VertexId src = live_[rng.bounded(live_.size())];
        const VertexRecord* v = g.find_vertex(src);
        if (v == nullptr || v->out.empty()) continue;
        op.kind = ChurnOp::Kind::kDeleteEdge;
        op.a = src;
        op.b = v->out[rng.bounded(v->out.size())].target;
        break;
      }
      if (op.kind == ChurnOp::Kind::kAddVertex) ++next_id_;
    } else {
      op.kind = ChurnOp::Kind::kDeleteVertex;
      op.a = live_[rng.bounded(live_.size())];
    }

    bool ok = false;
    switch (op.kind) {
      case ChurnOp::Kind::kAddVertex:
        ok = g.add_vertex(op.a) != nullptr;
        if (ok) track_add(op.a);
        break;
      case ChurnOp::Kind::kAddEdge:
        ok = g.add_edge(op.a, op.b, op.weight) != nullptr;
        break;
      case ChurnOp::Kind::kDeleteEdge:
        ok = g.delete_edge(op.a, op.b);
        break;
      case ChurnOp::Kind::kDeleteVertex:
        ok = g.delete_vertex(op.a);
        if (ok) track_remove(op.a);
        break;
    }
    ok ? ++batch.applied : ++batch.skipped;
    batch.ops.push_back(op);
  }
  if (obs::enabled()) {
    ChurnSeries& cs = churn_series();
    cs.batches.inc();
    cs.ops_applied.add(batch.applied);
    cs.ops_skipped.add(batch.skipped);
  }
  return batch;
}

std::size_t replay_batch(const ChurnBatch& batch, PropertyGraph& g) {
  std::size_t applied = 0;
  for (const ChurnOp& op : batch.ops) {
    switch (op.kind) {
      case ChurnOp::Kind::kAddVertex:
        if (g.add_vertex(op.a) != nullptr) ++applied;
        break;
      case ChurnOp::Kind::kAddEdge:
        if (g.add_edge(op.a, op.b, op.weight) != nullptr) ++applied;
        break;
      case ChurnOp::Kind::kDeleteEdge:
        if (g.delete_edge(op.a, op.b)) ++applied;
        break;
      case ChurnOp::Kind::kDeleteVertex:
        if (g.delete_vertex(op.a)) ++applied;
        break;
    }
  }
  return applied;
}

}  // namespace graphbig::graph
