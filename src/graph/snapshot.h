// Immutable frozen snapshot of a dynamic property graph.
//
// The paper's central representational contrast (Sections 3-4) is the
// dynamic vertex-centric structure the CPU framework traverses against the
// compact CSR the GPU side consumes. GraphSnapshot makes that boundary a
// first-class object: freeze() walks the dynamic graph once and emits
//
//   * an out-CSR (targets + weights, per-vertex edge order preserved),
//   * an in-CSR (sources, mirroring each vertex's dynamic in-list order),
//   * the dense-id <-> external-id mapping, and
//   * mutable property columns for algorithm state,
//
// all bump-allocated from one arena so the topology occupies a contiguous,
// relocatable address range (the prerequisite for per-NUMA-node
// partitioning and split device transfers). The snapshot's topology is
// immutable: mutating the source graph after freeze() does not affect it.
//
// Dense indices are assigned to live slots order-preservingly, so on a
// tombstone-free graph (every harness-built dataset) dense index == slot
// index and workloads produce bit-identical results on either
// representation. Per-vertex edge order is copied verbatim from the
// dynamic adjacency (NOT sorted), which is what keeps floating-point
// reductions over edges identical between the two paths; the sorted-row
// device CSR is derived separately (graph::build_csr(const GraphSnapshot&)).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/property.h"
#include "graph/property_graph.h"
#include "platform/arena.h"

namespace graphbig::graph {

/// Dense, zero-initialized algorithm-state columns keyed by PropKey.
///
/// The dynamic path stores algorithm state in per-vertex PropertyMaps; the
/// frozen path stores the same state as structure-of-arrays columns, one
/// value per dense vertex. Columns are allocated lazily on first write
/// (double-checked under a mutex, published with an atomic pointer), so
/// concurrent workload threads may write disjoint rows of the same column
/// without synchronization. Unlike PropertyMap there is no per-row
/// presence bit: an unwritten row reads as 0 / 0.0.
class PropertyColumns {
 public:
  explicit PropertyColumns(std::uint32_t rows) : rows_(rows) {}

  void set_int(std::uint32_t row, PropKey key, std::int64_t v) {
    int_col(key)[row] = v;
  }
  void set_double(std::uint32_t row, PropKey key, double v) {
    dbl_col(key)[row] = v;
  }
  std::int64_t get_int(std::uint32_t row, PropKey key,
                       std::int64_t fallback = 0) const {
    const auto* col = int_cols_[slot_for(key)].load(std::memory_order_acquire);
    return col == nullptr ? fallback : col[row];
  }
  double get_double(std::uint32_t row, PropKey key,
                    double fallback = 0.0) const {
    const auto* col = dbl_cols_[slot_for(key)].load(std::memory_order_acquire);
    return col == nullptr ? fallback : col[row];
  }

  /// Bytes held by materialized columns.
  std::size_t footprint_bytes() const;

 private:
  // PropKeys are small interned integers (workloads::props uses 1..12);
  // columns live in a fixed-size direct-mapped table.
  static constexpr std::size_t kMaxKeys = 32;

  static std::size_t slot_for(PropKey key) { return key % kMaxKeys; }

  std::int64_t* int_col(PropKey key);
  double* dbl_col(PropKey key);

  std::uint32_t rows_;
  std::array<std::atomic<std::int64_t*>, kMaxKeys> int_cols_{};
  std::array<std::atomic<double*>, kMaxKeys> dbl_cols_{};
  mutable std::mutex alloc_mutex_;
  std::vector<std::unique_ptr<std::int64_t[]>> int_storage_;
  std::vector<std::unique_ptr<double[]>> dbl_storage_;
};

/// Frozen CSR-backed snapshot of a PropertyGraph. Topology is immutable
/// after freeze(); property columns are mutable algorithm state.
class GraphSnapshot {
 public:
  /// Builds a snapshot of the current graph. Live slots are renumbered
  /// densely in slot order; per-vertex out- and in-edge order is copied
  /// verbatim from the dynamic adjacency.
  static GraphSnapshot freeze(const PropertyGraph& g);

  /// Empty snapshot (no vertices); assign a freeze() result over it.
  GraphSnapshot() = default;

  GraphSnapshot(GraphSnapshot&&) = default;
  GraphSnapshot& operator=(GraphSnapshot&&) = default;
  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  std::uint32_t num_vertices() const { return num_vertices_; }
  std::uint64_t num_edges() const { return num_edges_; }

  /// External id of a dense vertex.
  VertexId id_of(std::uint32_t v) const { return orig_id_[v]; }

  /// Dense index of an external id; kInvalidSlot when absent at freeze
  /// time. (Returns SlotIndex because on tombstone-free graphs the dense
  /// index and the dynamic slot coincide; workloads use them
  /// interchangeably through GraphView.)
  SlotIndex slot_of(VertexId id) const {
    auto it = index_.find(id);
    return it == index_.end() ? kInvalidSlot : it->second;
  }

  std::uint64_t out_degree(std::uint32_t v) const {
    return out_ptr_[v + 1] - out_ptr_[v];
  }
  std::uint64_t in_degree(std::uint32_t v) const {
    return in_ptr_[v + 1] - in_ptr_[v];
  }

  // Raw frozen arrays (device-CSR conversion, partitioning, tests).
  const std::uint64_t* out_ptr() const { return out_ptr_; }
  const std::uint32_t* out_dst() const { return out_dst_; }
  const double* out_weight() const { return out_weight_; }
  const std::uint64_t* in_ptr() const { return in_ptr_; }
  const std::uint32_t* in_src() const { return in_src_; }
  const VertexId* orig_id() const { return orig_id_; }

  /// Calls fn(dense target, weight) for each out-edge of v, in the dynamic
  /// graph's edge order.
  template <typename Fn>
  void for_each_out(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t lo = out_ptr_[v];
    const std::uint64_t hi = out_ptr_[v + 1];
    for (std::uint64_t e = lo; e < hi; ++e) {
      trace::read(trace::MemKind::kTopology, &out_dst_[e],
                  sizeof(std::uint32_t) + sizeof(double));
      trace::branch(trace::kBranchLoopCond, true);
      fn(out_dst_[e], out_weight_[e]);
    }
  }

  /// Calls fn(dense source) for each in-edge of v, in the dynamic graph's
  /// in-list order.
  template <typename Fn>
  void for_each_in(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t lo = in_ptr_[v];
    const std::uint64_t hi = in_ptr_[v + 1];
    for (std::uint64_t e = lo; e < hi; ++e) {
      trace::read(trace::MemKind::kTopology, &in_src_[e],
                  sizeof(std::uint32_t));
      trace::branch(trace::kBranchLoopCond, true);
      fn(in_src_[e]);
    }
  }

  /// Early-terminating scans: fn returns bool, false stops. The frozen
  /// pull path of the frontier engine walks in-rows through these.
  template <typename Fn>
  void for_each_out_until(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t lo = out_ptr_[v];
    const std::uint64_t hi = out_ptr_[v + 1];
    for (std::uint64_t e = lo; e < hi; ++e) {
      trace::read(trace::MemKind::kTopology, &out_dst_[e],
                  sizeof(std::uint32_t) + sizeof(double));
      trace::branch(trace::kBranchLoopCond, true);
      if (!fn(out_dst_[e], out_weight_[e])) return;
    }
  }

  template <typename Fn>
  void for_each_in_until(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t lo = in_ptr_[v];
    const std::uint64_t hi = in_ptr_[v + 1];
    for (std::uint64_t e = lo; e < hi; ++e) {
      trace::read(trace::MemKind::kTopology, &in_src_[e],
                  sizeof(std::uint32_t));
      trace::branch(trace::kBranchLoopCond, true);
      if (!fn(in_src_[e])) return;
    }
  }

  /// Mutable algorithm-state columns (topology stays frozen). Const
  /// because concurrent workloads write through a shared const snapshot.
  PropertyColumns& columns() const { return *columns_; }

  /// Resident bytes of the frozen arrays plus materialized columns.
  std::size_t footprint_bytes() const;

 private:
  std::uint32_t num_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  const std::uint64_t* out_ptr_ = nullptr;   // n + 1
  const std::uint32_t* out_dst_ = nullptr;   // m
  const double* out_weight_ = nullptr;       // m
  const std::uint64_t* in_ptr_ = nullptr;    // n + 1
  const std::uint32_t* in_src_ = nullptr;    // m
  const VertexId* orig_id_ = nullptr;        // n
  std::unordered_map<VertexId, SlotIndex> index_;
  std::unique_ptr<PropertyColumns> columns_;
  platform::Arena arena_;
};

}  // namespace graphbig::graph
