// Immutable frozen snapshot of a dynamic property graph, with an
// incremental re-freeze path.
//
// The paper's central representational contrast (Sections 3-4) is the
// dynamic vertex-centric structure the CPU framework traverses against the
// compact CSR the GPU side consumes. GraphSnapshot makes that boundary a
// first-class object: freeze() walks the dynamic graph once and emits
//
//   * an out-CSR (targets + weights, per-vertex edge order preserved),
//   * an in-CSR (sources, mirroring each vertex's dynamic in-list order),
//   * the row <-> external-id mapping, and
//   * mutable property columns for algorithm state,
//
// all bump-allocated from one arena so the topology occupies a contiguous,
// relocatable address range (the prerequisite for per-NUMA-node
// partitioning and split device transfers). The snapshot's topology is
// immutable between freezes: mutating the source graph does not affect it
// until the owner explicitly calls refresh().
//
// Row space: the snapshot keeps ONE ROW PER DYNAMIC SLOT, tombstones
// included. A dead slot is a zero-degree row whose orig_id is
// kInvalidVertex; is_live() distinguishes it. Row index therefore always
// equals slot index, which is what keeps dynamic-vs-frozen results
// bit-identical (same index space, same iteration order) and — crucially —
// what lets refresh() leave untouched rows byte-stable: a vertex deletion
// never renumbers the survivors. Per-vertex edge order is copied verbatim
// from the dynamic adjacency (NOT sorted); the sorted-row device CSR is
// derived separately (graph::build_csr(const GraphSnapshot&), which
// compacts dead rows away).
//
// refresh() delta-merges the source graph's MutationLog into the existing
// arena: rows the log marks dirty (plus rows for new slots) are rewritten
// into arena tail space and published through a per-row indirection table;
// every other row keeps its exact bytes and address. When the fraction of
// indirected rows crosses RefreshOptions::max_indirected_fraction, refresh
// falls back to a full rebuild (reported via RefreshStats) — the arena
// tail otherwise grows without bound and row locality degrades.
//
// Layouts: freeze() optionally applies a cache-oriented layout stage
// (LayoutOptions). Vertex reordering permutes only the PHYSICAL placement
// of rows inside the arena — hubs first for degree order, BFS bands for
// RCM-lite — published through the same per-row pointer tables the
// refresh path uses. The logical row space (slot indices, stored neighbor
// values, prefix arrays, id map, per-row edge order) is untouched, which
// is why every workload checksum is bit-identical across layouts.
// Compression swaps eligible rows' raw u32 storage for delta-varint blobs
// (graph/varint.h) decoded by a streaming cursor inside for_each_*; hot
// high-degree rows and rows the codec cannot shrink stay raw per row.
// Layouted (non-natural or compressed) snapshots refuse the incremental
// refresh path: refresh() falls back to a full rebuild that re-applies
// the layout (reported via RefreshStats::fallback_reason).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/property.h"
#include "graph/property_graph.h"
#include "graph/varint.h"
#include "platform/arena.h"

namespace graphbig::graph {

class SnapshotSerializer;  // snap_format.cpp: binary save/load internals

/// Dense, zero-initialized algorithm-state columns keyed by PropKey.
///
/// The dynamic path stores algorithm state in per-vertex PropertyMaps; the
/// frozen path stores the same state as structure-of-arrays columns, one
/// value per dense vertex. Columns are allocated lazily on first write
/// (double-checked under a mutex, published with an atomic pointer), so
/// concurrent workload threads may write disjoint rows of the same column
/// without synchronization. Unlike PropertyMap there is no per-row
/// presence bit: an unwritten row reads as 0 / 0.0.
class PropertyColumns {
 public:
  explicit PropertyColumns(std::uint32_t rows) : rows_(rows) {}

  void set_int(std::uint32_t row, PropKey key, std::int64_t v) {
    int_col(key)[row] = v;
  }
  void set_double(std::uint32_t row, PropKey key, double v) {
    dbl_col(key)[row] = v;
  }
  std::int64_t get_int(std::uint32_t row, PropKey key,
                       std::int64_t fallback = 0) const {
    const auto* col = int_cols_[slot_for(key)].load(std::memory_order_acquire);
    return col == nullptr ? fallback : col[row];
  }
  double get_double(std::uint32_t row, PropKey key,
                    double fallback = 0.0) const {
    const auto* col = dbl_cols_[slot_for(key)].load(std::memory_order_acquire);
    return col == nullptr ? fallback : col[row];
  }

  /// Bytes held by materialized columns.
  std::size_t footprint_bytes() const;

  // ---- serialization surface (snap_format) ----
  //
  // Columns are direct-mapped by PropKey % max_column_slots(); the
  // original key is not retained, so the binary snapshot format persists
  // columns by slot index (a key equal to the slot maps back to it).

  static constexpr std::size_t max_column_slots() { return 32; }
  std::uint32_t rows() const { return rows_; }

  /// Base pointer of a materialized column; null when slot is untouched.
  const std::int64_t* materialized_int(std::size_t slot) const {
    return int_cols_[slot].load(std::memory_order_acquire);
  }
  const double* materialized_double(std::size_t slot) const {
    return dbl_cols_[slot].load(std::memory_order_acquire);
  }

  /// Materializes (if needed) and returns the column for bulk writes —
  /// the snapshot loader memcpys persisted columns back through this.
  std::int64_t* ensure_int(PropKey key) { return int_col(key); }
  double* ensure_double(PropKey key) { return dbl_col(key); }

 private:
  // PropKeys are small interned integers (workloads::props uses 1..12);
  // columns live in a fixed-size direct-mapped table.
  static constexpr std::size_t kMaxKeys = 32;
  static_assert(kMaxKeys == 32, "max_column_slots() mirrors kMaxKeys");

  static std::size_t slot_for(PropKey key) { return key % kMaxKeys; }

  std::int64_t* int_col(PropKey key);
  double* dbl_col(PropKey key);

  std::uint32_t rows_;
  std::array<std::atomic<std::int64_t*>, kMaxKeys> int_cols_{};
  std::array<std::atomic<double*>, kMaxKeys> dbl_cols_{};
  mutable std::mutex alloc_mutex_;
  std::vector<std::unique_ptr<std::int64_t[]>> int_storage_;
  std::vector<std::unique_ptr<double[]>> dbl_storage_;
};

/// How a refresh() resolved, plus the work it did — the telemetry surface
/// the churn bench and the negative-path tests read.
struct RefreshStats {
  enum class Kind {
    kNone,         // snapshot has never been refreshed
    kIncremental,  // delta-merge: only dirty/new rows rewritten
    kFullRebuild,  // fell back to a from-scratch freeze
  };
  Kind kind = Kind::kNone;
  /// Why an incremental merge was refused; "" for incremental refreshes.
  const char* fallback_reason = "";
  std::uint32_t rows_total = 0;
  std::uint32_t rows_rewritten = 0;  // pre-existing rows re-copied to tail
  std::uint32_t rows_added = 0;      // rows for slots born since the base
  std::uint32_t vertices_deleted = 0;
  std::uint64_t edges_copied = 0;
  /// Fraction of rows (out + in, over 2 * rows_total) served through the
  /// indirection table after this refresh.
  double indirected_fraction = 0.0;
  double seconds = 0.0;
};

const char* to_string(RefreshStats::Kind kind);

struct RefreshOptions {
  /// Fall back to a full rebuild once more than this fraction of rows
  /// would be indirected. 0.0 forces every non-clean refresh to rebuild.
  double max_indirected_fraction = 0.5;
};

/// Physical row placement applied at freeze time. Placement only: logical
/// row indices and traversal results are identical across orders.
enum class VertexOrder {
  kNatural,  // slot order (placement == logical order, today's layout)
  kDegree,   // hub clustering: descending undirected degree, stable
  kRcm,      // RCM-lite: BFS bands from the highest-degree vertex
};

const char* to_string(VertexOrder order);

/// Parses "natural" / "degree" / "rcm"; false on anything else.
bool parse_vertex_order(const std::string& text, VertexOrder* out);

/// Freeze-time layout policy threaded through freeze()/refresh().
struct LayoutOptions {
  VertexOrder order = VertexOrder::kNatural;
  /// Delta-varint compress adjacency rows (per-row raw fallback).
  bool compress = false;
  /// Rows with degree at or past this stay raw even when compress is on
  /// (hot hub rows trade bytes for decode-free scans).
  std::uint32_t hot_row_degree = 1024;

  /// True for the default layout — the byte-stable representation the
  /// incremental refresh path requires.
  bool natural_raw() const {
    return order == VertexOrder::kNatural && !compress;
  }
};

/// What the layout stage did at the last freeze/rebuild: row disposition
/// and adjacency byte footprint (the bench's compression-ratio surface).
/// Counts cover both directions (out + in rows).
struct LayoutStats {
  std::uint32_t rows_compressed = 0;
  std::uint32_t rows_raw = 0;  // raw by policy, hotness, or incompressibility
  /// Logical adjacency payload: 4 bytes per stored neighbor (out targets +
  /// in sources), excluding weights and prefix/pointer overhead.
  std::uint64_t adjacency_bytes_raw = 0;
  /// Bytes actually resident for the same payload after the layout stage.
  std::uint64_t adjacency_bytes_stored = 0;
  double seconds = 0.0;  // layout-stage share of the freeze

  double compression_ratio() const {
    return adjacency_bytes_stored == 0
               ? 1.0
               : static_cast<double>(adjacency_bytes_raw) /
                     static_cast<double>(adjacency_bytes_stored);
  }
};

/// Frozen CSR-backed snapshot of a PropertyGraph. Topology is immutable
/// between freeze()/refresh() calls; property columns are mutable
/// algorithm state.
class GraphSnapshot {
 public:
  /// Builds a snapshot of the current graph: one row per slot (dead slots
  /// become zero-degree rows), per-vertex out- and in-edge order copied
  /// verbatim. Rearms the graph's mutation log, so a later refresh()
  /// against the same graph can delta-merge. `layout` selects the physical
  /// row placement and adjacency encoding; results are identical across
  /// layouts, only memory behavior differs.
  static GraphSnapshot freeze(const PropertyGraph& g,
                              const LayoutOptions& layout = {});

  /// Delta-merges the graph's mutation log into this snapshot. The graph
  /// must be the one this snapshot was frozen from; intervening freezes /
  /// refreshes are fine as long as the log's bounded generation journal
  /// still covers this snapshot's base serial (MutationLog::kMaxHistory
  /// generations — the serving layer's snapshot pool relies on this).
  /// When the journal has evicted the base generation — or the
  /// indirected-row fraction would cross opts.max_indirected_fraction, or
  /// the snapshot carries a non-natural or compressed layout — the
  /// snapshot is fully rebuilt, re-applying its layout, and the returned
  /// stats say why. Always leaves the snapshot equivalent to
  /// freeze(g, layout()) and rearms the log. Invalidates property columns.
  const RefreshStats& refresh(const PropertyGraph& g,
                              const RefreshOptions& opts = {});

  /// Empty snapshot (no vertices); assign a freeze() result over it.
  GraphSnapshot() = default;

  GraphSnapshot(GraphSnapshot&&) = default;
  GraphSnapshot& operator=(GraphSnapshot&&) = default;
  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  /// Live vertices (rows whose orig_id is valid).
  std::uint32_t num_vertices() const { return num_vertices_; }
  std::uint64_t num_edges() const { return num_edges_; }

  /// Rows in the snapshot == slot count of the source graph at
  /// freeze/refresh time (>= num_vertices; dead slots keep their row).
  std::uint32_t row_count() const { return row_count_; }

  /// True when row v holds a live vertex.
  bool is_live(std::uint32_t v) const {
    return orig_id_[v] != kInvalidVertex;
  }

  /// External id of a row; kInvalidVertex for dead rows.
  VertexId id_of(std::uint32_t v) const { return orig_id_[v]; }

  /// Row of an external id; kInvalidSlot when absent at freeze time.
  /// (Returns SlotIndex because row index == dynamic slot index; workloads
  /// use them interchangeably through GraphView.)
  SlotIndex slot_of(VertexId id) const {
    auto it = index_.find(id);
    return it == index_.end() ? kInvalidSlot : it->second;
  }

  std::uint64_t out_degree(std::uint32_t v) const {
    return out_ptr_[v + 1] - out_ptr_[v];
  }
  std::uint64_t in_degree(std::uint32_t v) const {
    return in_ptr_[v + 1] - in_ptr_[v];
  }

  // ---- per-row edge storage ----
  //
  // In the natural raw layout, before the first refresh, every row lives
  // in the base arrays and out_row(v) == out_dst() + out_ptr()[v]; after a
  // refresh, rewritten rows point into arena tail space through the
  // indirection tables. Layouted snapshots publish EVERY row through the
  // tables (placement-permuted raw storage), and compressed rows publish a
  // byte pointer through out_enc_row()/in_enc_row() instead — a non-null
  // encoded pointer supersedes the raw one. The row-pointer arrays
  // (out_ptr/in_ptr) always hold true LOGICAL degree prefixes — they are
  // rebuilt on refresh and never permuted — so prefix-based chunking and
  // degree queries stay exact under any layout.

  /// Raw neighbor storage for row v; null when the row is compressed
  /// (use out_enc_row / for_each_out).
  const std::uint32_t* out_row(std::uint32_t v) const {
    return out_rows_ != nullptr ? out_rows_[v] : out_dst_ + out_ptr_[v];
  }
  const double* out_weight_row(std::uint32_t v) const {
    return out_wrows_ != nullptr ? out_wrows_[v] : out_weight_ + out_ptr_[v];
  }
  const std::uint32_t* in_row(std::uint32_t v) const {
    return in_rows_ != nullptr ? in_rows_[v] : in_src_ + in_ptr_[v];
  }

  /// Delta-varint encoded row bytes; null when the row is stored raw
  /// (always null for uncompressed layouts).
  const std::uint8_t* out_enc_row(std::uint32_t v) const {
    return out_enc_rows_ != nullptr ? out_enc_rows_[v] : nullptr;
  }
  const std::uint8_t* in_enc_row(std::uint32_t v) const {
    return in_enc_rows_ != nullptr ? in_enc_rows_[v] : nullptr;
  }

  // Raw frozen arrays (device-CSR conversion, partitioning, tests). The
  // edge arrays (out_dst/out_weight/in_src) describe refreshed or layouted
  // rows only through out_row()/in_row()/for_each_*; the prefix arrays are
  // always current.
  const std::uint64_t* out_ptr() const { return out_ptr_; }
  const std::uint32_t* out_dst() const { return out_dst_; }
  const double* out_weight() const { return out_weight_; }
  const std::uint64_t* in_ptr() const { return in_ptr_; }
  const std::uint32_t* in_src() const { return in_src_; }
  const VertexId* orig_id() const { return orig_id_; }

  /// Calls fn(row target, weight) for each out-edge of v, in the dynamic
  /// graph's edge order. Compressed rows stream through the varint
  /// decoder; the memory trace prices the encoded bytes actually touched,
  /// so the perfmodel sees the compressed footprint.
  template <typename Fn>
  void for_each_out(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t deg = out_ptr_[v + 1] - out_ptr_[v];
    const double* w = out_weight_row(v);
    if (const std::uint8_t* enc = out_enc_row(v)) {
      varint::RowDecoder dec(enc);
      for (std::uint64_t e = 0; e < deg; ++e) {
        const std::uint8_t* at = dec.cursor();
        const std::uint32_t t = dec.next_u32();
        trace::read(trace::MemKind::kTopology, at,
                    static_cast<std::size_t>(dec.cursor() - at) +
                        sizeof(double));
        trace::branch(trace::kBranchLoopCond, true);
        fn(t, w[e]);
      }
      return;
    }
    const std::uint32_t* dst = out_row(v);
    for (std::uint64_t e = 0; e < deg; ++e) {
      trace::read(trace::MemKind::kTopology, &dst[e],
                  sizeof(std::uint32_t) + sizeof(double));
      trace::branch(trace::kBranchLoopCond, true);
      fn(dst[e], w[e]);
    }
  }

  /// Calls fn(row source) for each in-edge of v, in the dynamic graph's
  /// in-list order.
  template <typename Fn>
  void for_each_in(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t deg = in_ptr_[v + 1] - in_ptr_[v];
    if (const std::uint8_t* enc = in_enc_row(v)) {
      varint::RowDecoder dec(enc);
      for (std::uint64_t e = 0; e < deg; ++e) {
        const std::uint8_t* at = dec.cursor();
        const std::uint32_t s = dec.next_u32();
        trace::read(trace::MemKind::kTopology, at,
                    static_cast<std::size_t>(dec.cursor() - at));
        trace::branch(trace::kBranchLoopCond, true);
        fn(s);
      }
      return;
    }
    const std::uint32_t* src = in_row(v);
    for (std::uint64_t e = 0; e < deg; ++e) {
      trace::read(trace::MemKind::kTopology, &src[e],
                  sizeof(std::uint32_t));
      trace::branch(trace::kBranchLoopCond, true);
      fn(src[e]);
    }
  }

  /// Early-terminating scans: fn returns bool, false stops. The frozen
  /// pull path of the frontier engine walks in-rows through these.
  template <typename Fn>
  void for_each_out_until(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t deg = out_ptr_[v + 1] - out_ptr_[v];
    const double* w = out_weight_row(v);
    if (const std::uint8_t* enc = out_enc_row(v)) {
      varint::RowDecoder dec(enc);
      for (std::uint64_t e = 0; e < deg; ++e) {
        const std::uint8_t* at = dec.cursor();
        const std::uint32_t t = dec.next_u32();
        trace::read(trace::MemKind::kTopology, at,
                    static_cast<std::size_t>(dec.cursor() - at) +
                        sizeof(double));
        trace::branch(trace::kBranchLoopCond, true);
        if (!fn(t, w[e])) return;
      }
      return;
    }
    const std::uint32_t* dst = out_row(v);
    for (std::uint64_t e = 0; e < deg; ++e) {
      trace::read(trace::MemKind::kTopology, &dst[e],
                  sizeof(std::uint32_t) + sizeof(double));
      trace::branch(trace::kBranchLoopCond, true);
      if (!fn(dst[e], w[e])) return;
    }
  }

  template <typename Fn>
  void for_each_in_until(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t deg = in_ptr_[v + 1] - in_ptr_[v];
    if (const std::uint8_t* enc = in_enc_row(v)) {
      varint::RowDecoder dec(enc);
      for (std::uint64_t e = 0; e < deg; ++e) {
        const std::uint8_t* at = dec.cursor();
        const std::uint32_t s = dec.next_u32();
        trace::read(trace::MemKind::kTopology, at,
                    static_cast<std::size_t>(dec.cursor() - at));
        trace::branch(trace::kBranchLoopCond, true);
        if (!fn(s)) return;
      }
      return;
    }
    const std::uint32_t* src = in_row(v);
    for (std::uint64_t e = 0; e < deg; ++e) {
      trace::read(trace::MemKind::kTopology, &src[e],
                  sizeof(std::uint32_t));
      trace::branch(trace::kBranchLoopCond, true);
      if (!fn(src[e])) return;
    }
  }

  /// Mutable algorithm-state columns (topology stays frozen). Const
  /// because concurrent workloads write through a shared const snapshot.
  PropertyColumns& columns() const { return *columns_; }

  /// Drops all column state (fresh zero/fallback reads). refresh() does
  /// this implicitly; the churn harness calls it between workload runs on
  /// the same snapshot.
  void reset_columns() {
    columns_ = std::make_unique<PropertyColumns>(row_count_);
  }

  // ---- layout ----

  /// The layout policy this snapshot was frozen with (and that refresh
  /// rebuilds preserve).
  const LayoutOptions& layout() const { return layout_; }

  /// What the layout stage did at the last freeze/rebuild. All-zero for
  /// the natural raw layout (no layout stage runs).
  const LayoutStats& layout_stats() const { return layout_stats_; }

  // ---- refresh telemetry ----

  /// Stats of the most recent refresh() (kind kNone before the first).
  const RefreshStats& last_refresh() const { return last_refresh_; }

  /// Serial of the source graph's mutation-log generation this snapshot
  /// composes with; 0 for a default-constructed snapshot.
  std::uint64_t base_serial() const { return base_serial_; }

  /// Rows currently served through the indirection tables (out + in).
  std::uint64_t rows_indirected() const {
    return out_indirected_ + in_indirected_;
  }

  /// Resident bytes of the frozen arrays plus materialized columns.
  std::size_t footprint_bytes() const;

 private:
  /// The binary snapshot format (graph/snap_format.{h,cpp}) reconstructs a
  /// snapshot's arena arrays and pointer tables directly from a file image.
  friend class SnapshotSerializer;

  void rebuild_from(const PropertyGraph& g);
  /// Layout stage of rebuild_from: physical placement permutation +
  /// per-row encoding. Consumes the freshly built logical prefix arrays.
  void apply_layout(const PropertyGraph& g);
  std::vector<std::uint32_t> build_order(const PropertyGraph& g) const;

  std::uint32_t num_vertices_ = 0;
  std::uint32_t row_count_ = 0;
  std::uint64_t num_edges_ = 0;
  const std::uint64_t* out_ptr_ = nullptr;   // rows + 1
  const std::uint32_t* out_dst_ = nullptr;   // base edge storage
  const double* out_weight_ = nullptr;       // base edge storage
  const std::uint64_t* in_ptr_ = nullptr;    // rows + 1
  const std::uint32_t* in_src_ = nullptr;    // base edge storage
  const VertexId* orig_id_ = nullptr;        // rows
  // Per-row indirection tables, null until the first incremental refresh
  // or layouted freeze (layouts publish every row through them).
  const std::uint32_t* const* out_rows_ = nullptr;
  const double* const* out_wrows_ = nullptr;
  const std::uint32_t* const* in_rows_ = nullptr;
  // Per-row encoded-blob pointers; non-null entry = row is delta-varint
  // compressed (supersedes the raw pointer). Null tables for raw layouts.
  const std::uint8_t* const* out_enc_rows_ = nullptr;
  const std::uint8_t* const* in_enc_rows_ = nullptr;
  LayoutOptions layout_;
  LayoutStats layout_stats_;
  // Which rows point at tail space (size row_count_); kept outside the
  // arena because they are rewritten wholesale each refresh.
  std::vector<std::uint8_t> out_indirect_;
  std::vector<std::uint8_t> in_indirect_;
  std::uint64_t out_indirected_ = 0;
  std::uint64_t in_indirected_ = 0;
  std::uint64_t base_serial_ = 0;
  RefreshStats last_refresh_;
  std::unordered_map<VertexId, SlotIndex> index_;
  std::unique_ptr<PropertyColumns> columns_;
  platform::Arena arena_;
};

/// Row-by-row structural comparison of two snapshots: row space, liveness,
/// external ids, edge sequences (targets, weights, in-sources, in edge
/// order), id index, and edge/vertex counts. On mismatch, when `why` is
/// non-null it receives a description of the first divergence. The churn
/// harness compares an incrementally refreshed snapshot against a fresh
/// freeze with this.
bool structurally_equal(const GraphSnapshot& a, const GraphSnapshot& b,
                        std::string* why = nullptr);

}  // namespace graphbig::graph
