// Compact static graph representations: CSR and COO.
//
// Following the paper (Section 4.1), the GPU side of GraphBIG does not run
// on the dynamic vertex-centric structure. In the graph populating step the
// dynamic graph in CPU memory is converted to CSR/COO and "transferred" to
// the device. In this reproduction the SIMT simulator consumes the same
// CSR/COO arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"
#include "graph/snapshot.h"
#include "platform/aligned.h"

namespace graphbig::graph {

/// Compressed Sparse Row graph (Figure 2(b)). Vertices are renumbered into
/// a dense [0, n) range in slot order; `orig_id[i]` maps back to the
/// external id in the property graph.
struct Csr {
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  platform::DeviceVector<std::uint64_t> row_ptr;   // size num_vertices + 1
  platform::DeviceVector<std::uint32_t> col;       // size num_edges
  platform::DeviceVector<float> weight;            // size num_edges
  std::vector<VertexId> orig_id;        // size num_vertices

  std::uint64_t degree(std::uint32_t v) const {
    return row_ptr[v + 1] - row_ptr[v];
  }

  /// Bytes of device memory the representation would occupy.
  std::size_t footprint_bytes() const {
    return row_ptr.size() * sizeof(std::uint64_t) +
           col.size() * sizeof(std::uint32_t) +
           weight.size() * sizeof(float) + orig_id.size() * sizeof(VertexId);
  }
};

/// Coordinate-list graph: one (src, dst) pair per edge. Used by the
/// edge-centric GPU kernels (CComp, TC).
struct Coo {
  std::uint32_t num_vertices = 0;
  platform::DeviceVector<std::uint32_t> src;
  platform::DeviceVector<std::uint32_t> dst;

  std::uint64_t num_edges() const { return src.size(); }
};

/// Converts the dynamic property graph into CSR (the "graph populating"
/// step of the paper's GPU benchmarks). Neighbor lists are sorted by
/// destination id, which the intersection-based kernels (TC) require.
Csr build_csr(const PropertyGraph& graph);

/// Converts a frozen snapshot into the device CSR (the "graph populating"
/// step the SIMT engine consumes). The snapshot already holds dense ids
/// and contiguous adjacency, so this is a copy + per-row sort with no
/// pointer chasing through the dynamic graph; the result is structurally
/// identical to build_csr() on the snapshot's source graph.
Csr build_csr(const GraphSnapshot& snapshot);

/// Derives COO from CSR.
Coo build_coo(const Csr& csr);

/// Builds the transpose (reverse edges) of a CSR graph.
Csr transpose(const Csr& csr);

/// Builds an undirected (symmetrized, deduplicated) CSR from a directed one.
Csr symmetrize(const Csr& csr);

/// Structural equality check used by conversion tests.
bool csr_equal(const Csr& a, const Csr& b);

}  // namespace graphbig::graph
