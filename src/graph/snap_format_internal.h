// Internal on-disk structures and validation passes of graphbig.snap.v1,
// shared between the serializer (snap_format.cpp) and the out-of-core
// backend (disk_graph.cpp). Not part of the public snap:: API — include
// snap_format.h for save/load/inspect/validate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/snap_format.h"

namespace graphbig::graph::snapdetail {

/// "section <name>: <what>" — the diagnostic prefix every section-level
/// SnapError carries (the corruption-fuzz tests match on it).
inline std::string sec_msg(snap::SectionId id, const char* what) {
  return std::string("section ") +
         snap::section_name(static_cast<std::uint32_t>(id)) + ": " + what;
}

struct Header {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t header_bytes = 0;
  std::uint32_t section_count = 0;
  std::uint32_t order = 0;
  std::uint32_t compress = 0;
  std::uint32_t hot_row_degree = 0;
  std::uint32_t row_count = 0;
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t num_in_edges = 0;
  std::uint64_t file_bytes = 0;
  // Everything above this point ([0, 64)) is covered by file_checksum.
  std::uint64_t table_checksum = 0;
  std::uint64_t file_checksum = 0;
  std::uint8_t reserved[48] = {};
};
static_assert(sizeof(Header) == snap::kHeaderBytes);
static_assert(offsetof(Header, table_checksum) == 64,
              "file_checksum covers header bytes [0, 64)");

struct SectionEntry {
  std::uint32_t id = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(SectionEntry) == snap::kSectionEntryBytes);

inline constexpr std::uint64_t kTableOffset = snap::kHeaderBytes;
inline constexpr std::uint64_t kTableBytes =
    std::uint64_t{snap::kSectionCount} * snap::kSectionEntryBytes;
inline constexpr std::uint64_t kFirstSectionOffset =
    (kTableOffset + kTableBytes + snap::kSectionAlign - 1) &
    ~(snap::kSectionAlign - 1);

/// Validates the header + section table of a file whose first `avail`
/// bytes are at `data` and whose true size is `actual_bytes`. Catches:
/// bad magic/version, malformed header fields, table corruption (table
/// checksum), header corruption (file checksum), out-of-order or
/// out-of-bounds sections (naming the first section that does not fit —
/// this is what turns a truncated file into a section-named diagnostic),
/// and a header/file size disagreement. Throws snap::SnapError.
void parse_header(const std::uint8_t* data, std::uint64_t avail,
                  std::uint64_t actual_bytes, Header* h,
                  std::vector<SectionEntry>* table);

/// Structural invariants beyond checksums: exact section sizes, monotone
/// degree prefixes that sum to the header's edge counts, in-bounds row
/// offsets, well-formed id map and property-column framing. Only touches
/// the resident (non-payload) sections — O(rows), safe over an mmap'd
/// file. After this, every index a reader dereferences is in bounds.
void validate_structure(const Header& h,
                        const std::vector<SectionEntry>& table,
                        const std::uint8_t* buf);

/// Public-facing SnapInfo from a validated header + table.
snap::SnapInfo make_info(const Header& h, const SectionEntry* table);

}  // namespace graphbig::graph::snapdetail
