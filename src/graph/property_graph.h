// The System-G-style graph framework: a dynamic, vertex-centric property
// graph accessed through framework primitives.
//
// Representation (paper Figure 2(c)): a vertex is the basic unit of the
// graph. The vertex property and the outgoing edge list live inside the
// same vertex structure; all vertex structures form an adjacency list with
// an index. The representation is fully dynamic -- vertices and edges can
// be added and deleted at any time -- unlike the static CSR used by
// algorithm prototypes.
//
// All graph access in the workloads goes through the primitives defined
// here (find/add/delete vertex/edge, neighbor traversal, property update);
// the primitives attribute their execution time to the framework (Figure 1)
// and emit memory-access trace events for the perfmodel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "graph/mutation_log.h"
#include "graph/property.h"
#include "platform/timer.h"
#include "trace/access.h"

namespace graphbig::graph {

using VertexId = std::uint64_t;
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

/// Internal dense slot index of a vertex inside the graph's vertex table.
using SlotIndex = std::uint32_t;
inline constexpr SlotIndex kInvalidSlot = ~SlotIndex{0};

// ---------------------------------------------------------------------------
// In-framework time accounting (Figure 1)
// ---------------------------------------------------------------------------

/// Global switch + per-thread accumulator for time spent inside framework
/// primitives. Nested primitive calls (add_edge -> find_vertex) are counted
/// once via a depth counter. Accounting is off by default; Figure 1 runs
/// enable it explicitly.
namespace fwk {

void set_accounting(bool enabled);
bool accounting_enabled();

/// Nanoseconds this thread has spent inside framework primitives since the
/// last reset_thread_time().
std::uint64_t thread_time_ns();
void reset_thread_time();

namespace detail {
struct ThreadState {
  std::uint64_t total_ns = 0;
  int depth = 0;
};
ThreadState& tls();
}  // namespace detail

/// Per-thread slot-cache counters: how many per-edge target resolutions hit
/// the cached slot (O(1) vertex_at path) versus fell back to the id index
/// (hash probe). `bench_micro_primitives` reports the hit rate; on an
/// unmutated graph it must be ~100%.
struct SlotCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
inline SlotCacheStats& slot_cache_stats() {
  thread_local SlotCacheStats stats;
  return stats;
}
inline void reset_slot_cache_stats() { slot_cache_stats() = SlotCacheStats{}; }

/// RAII guard marking a framework-primitive scope.
class PrimitiveScope {
 public:
  PrimitiveScope() : active_(accounting_enabled()) {
    if (active_ && detail::tls().depth++ == 0) timer_.reset();
  }
  ~PrimitiveScope() {
    if (active_ && --detail::tls().depth == 0) {
      detail::tls().total_ns += timer_.nanoseconds();
    }
  }
  PrimitiveScope(const PrimitiveScope&) = delete;
  PrimitiveScope& operator=(const PrimitiveScope&) = delete;

 private:
  bool active_;
  platform::WallTimer timer_;
};

}  // namespace fwk

// ---------------------------------------------------------------------------
// Graph storage
// ---------------------------------------------------------------------------

/// Packs a cached slot and the mutation epoch it was stamped under into one
/// word, so the cache can be read/refreshed with single relaxed atomic ops.
inline constexpr std::uint64_t pack_slot_cache(SlotIndex slot,
                                               std::uint32_t epoch) {
  return (static_cast<std::uint64_t>(epoch) << 32) |
         static_cast<std::uint64_t>(slot);
}

/// An outgoing edge stored inside its source vertex (vertex-centric layout).
///
/// Alongside the external target id, the record caches the target's dense
/// slot index, stamped with the graph's mutation epoch at the time it was
/// written. PropertyGraph::resolve_target_slot() uses the cache while the
/// stamp matches the current epoch and falls back to the id index (then
/// re-stamps) once the graph has been mutated. The stamp+slot pair lives in
/// a single atomic word so concurrent traversals may lazily re-warm a stale
/// entry without a data race; epoch 0 is never current, so a
/// default-constructed record is always resolved through the index first.
struct EdgeRecord {
  VertexId target = kInvalidVertex;
  double weight = 1.0;
  PropertyMap props;
  mutable std::atomic<std::uint64_t> slot_cache{
      pack_slot_cache(kInvalidSlot, 0)};

  EdgeRecord() = default;
  EdgeRecord(VertexId t, double w, SlotIndex slot, std::uint32_t epoch)
      : target(t), weight(w), slot_cache(pack_slot_cache(slot, epoch)) {}
  EdgeRecord(const EdgeRecord& o)
      : target(o.target),
        weight(o.weight),
        props(o.props),
        slot_cache(o.slot_cache.load(std::memory_order_relaxed)) {}
  EdgeRecord(EdgeRecord&& o) noexcept
      : target(o.target),
        weight(o.weight),
        props(std::move(o.props)),
        slot_cache(o.slot_cache.load(std::memory_order_relaxed)) {}
  EdgeRecord& operator=(const EdgeRecord& o) {
    target = o.target;
    weight = o.weight;
    props = o.props;
    slot_cache.store(o.slot_cache.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
  EdgeRecord& operator=(EdgeRecord&& o) noexcept {
    target = o.target;
    weight = o.weight;
    props = std::move(o.props);
    slot_cache.store(o.slot_cache.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
};

/// An incoming-adjacency entry: the source's external id plus the same
/// (epoch, slot) stamp the out-edges carry, so reverse traversal (CComp and
/// kCore's undirected view, BCentr's dependency accumulation) resolves the
/// source's dense slot in O(1) on an unmutated graph instead of paying one
/// hash probe per in-edge.
struct InRecord {
  VertexId source = kInvalidVertex;
  mutable std::atomic<std::uint64_t> slot_cache{
      pack_slot_cache(kInvalidSlot, 0)};

  InRecord() = default;
  InRecord(VertexId s, SlotIndex slot, std::uint32_t epoch)
      : source(s), slot_cache(pack_slot_cache(slot, epoch)) {}
  InRecord(const InRecord& o)
      : source(o.source),
        slot_cache(o.slot_cache.load(std::memory_order_relaxed)) {}
  InRecord(InRecord&& o) noexcept
      : source(o.source),
        slot_cache(o.slot_cache.load(std::memory_order_relaxed)) {}
  InRecord& operator=(const InRecord& o) {
    source = o.source;
    slot_cache.store(o.slot_cache.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
  InRecord& operator=(InRecord&& o) noexcept {
    source = o.source;
    slot_cache.store(o.slot_cache.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }
};

/// A vertex record: external id, property payload, and both adjacency
/// directions. Outgoing edges carry full edge records; incoming adjacency
/// stores source ids with a slot-cache stamp (enough for reverse traversal,
/// moralization, and vertex deletion).
struct VertexRecord {
  VertexId id = kInvalidVertex;
  bool alive = false;
  PropertyMap props;
  std::vector<EdgeRecord> out;
  std::vector<InRecord> in;
};

/// Dynamic vertex-centric property graph (directed multigraph by default;
/// add_edge refuses duplicates unless allow_parallel_edges is set).
class PropertyGraph {
 public:
  PropertyGraph() = default;

  /// Reserve capacity for an expected number of vertices.
  void reserve(std::size_t vertices);

  // ---- vertex primitives ----

  /// Adds a vertex with the given external id. Returns the record, or
  /// nullptr if the id already exists.
  VertexRecord* add_vertex(VertexId id);

  /// Adds a vertex with a fresh auto-assigned id.
  VertexRecord* add_vertex();

  /// Finds a live vertex by external id; nullptr if absent.
  VertexRecord* find_vertex(VertexId id);
  const VertexRecord* find_vertex(VertexId id) const;

  /// Deletes a vertex and every edge incident to it (both directions).
  /// Returns false if the vertex does not exist.
  bool delete_vertex(VertexId id);

  // ---- edge primitives ----

  /// Adds a directed edge src -> dst with the given weight. Returns the
  /// edge record, or nullptr if either endpoint is missing or the edge
  /// already exists (and parallel edges are disabled).
  EdgeRecord* add_edge(VertexId src, VertexId dst, double weight = 1.0);

  /// Finds an edge src -> dst; nullptr if absent.
  EdgeRecord* find_edge(VertexId src, VertexId dst);
  const EdgeRecord* find_edge(VertexId src, VertexId dst) const;

  /// Deletes edge src -> dst. Returns false if absent.
  bool delete_edge(VertexId src, VertexId dst);

  // ---- traversal primitives ----

  /// Calls fn(const EdgeRecord&) for each outgoing edge of v. If fn also
  /// accepts a SlotIndex second argument, it receives the target's dense
  /// slot resolved through the edge's slot cache (O(1) on an unmutated
  /// graph) — the traversal fast path the parallel workloads use.
  template <typename Fn>
  void for_each_out_edge(const VertexRecord& v, Fn&& fn) const {
    fwk::PrimitiveScope scope;
    trace::block(trace::kBlockTraverseNeighbors);
    // Loop back-edges are emitted as taken branches; the exit branch is
    // omitted (modern frontends predict short-trip loop exits via the
    // loop stream detector, and modeling every exit as a gshare miss
    // overstates traversal misprediction badly).
    for (const EdgeRecord& e : v.out) {
      trace::read(trace::MemKind::kTopology, &e, sizeof(EdgeRecord));
      trace::branch(trace::kBranchLoopCond, true);
      if constexpr (std::is_invocable_v<Fn&, const EdgeRecord&, SlotIndex>) {
        fn(e, resolve_target_slot(e));
      } else {
        fn(e);
      }
    }
  }

  template <typename Fn>
  void for_each_out_edge(const VertexRecord& v, Fn&& fn) {
    if constexpr (std::is_invocable_v<Fn&, EdgeRecord&, SlotIndex>) {
      static_cast<const PropertyGraph*>(this)->for_each_out_edge(
          v, [&](const EdgeRecord& e, SlotIndex slot) {
            fn(const_cast<EdgeRecord&>(e), slot);
          });
    } else {
      static_cast<const PropertyGraph*>(this)->for_each_out_edge(
          v, [&](const EdgeRecord& e) { fn(const_cast<EdgeRecord&>(e)); });
    }
  }

  /// Calls fn(VertexId source) for each incoming edge of v. If fn also
  /// accepts a SlotIndex second argument, it receives the source's dense
  /// slot resolved through the in-record's slot cache (O(1) on an
  /// unmutated graph) — the reverse-traversal mirror of the out-edge fast
  /// path.
  template <typename Fn>
  void for_each_in_neighbor(const VertexRecord& v, Fn&& fn) const {
    fwk::PrimitiveScope scope;
    trace::block(trace::kBlockTraverseNeighbors);
    for (const InRecord& r : v.in) {
      trace::read(trace::MemKind::kTopology, &r, sizeof(InRecord));
      trace::branch(trace::kBranchLoopCond, true);
      if constexpr (std::is_invocable_v<Fn&, VertexId, SlotIndex>) {
        fn(r.source, resolve_source_slot(r));
      } else {
        fn(r.source);
      }
    }
  }

  /// Early-terminating variants: fn returns bool, false stops the scan.
  /// The pull side of direction-optimized traversal lives on these — a
  /// pull step abandons a destination's in-list as soon as one active
  /// parent is found, which is what makes gather cheaper than scatter on
  /// heavy frontiers. Same slot-cache resolution as the full scans.
  template <typename Fn>
  void for_each_out_edge_until(const VertexRecord& v, Fn&& fn) const {
    fwk::PrimitiveScope scope;
    trace::block(trace::kBlockTraverseNeighbors);
    for (const EdgeRecord& e : v.out) {
      trace::read(trace::MemKind::kTopology, &e, sizeof(EdgeRecord));
      trace::branch(trace::kBranchLoopCond, true);
      if (!fn(e, resolve_target_slot(e))) return;
    }
  }

  template <typename Fn>
  void for_each_in_neighbor_until(const VertexRecord& v, Fn&& fn) const {
    fwk::PrimitiveScope scope;
    trace::block(trace::kBlockTraverseNeighbors);
    for (const InRecord& r : v.in) {
      trace::read(trace::MemKind::kTopology, &r, sizeof(InRecord));
      trace::branch(trace::kBranchLoopCond, true);
      if (!fn(r.source, resolve_source_slot(r))) return;
    }
  }

  /// Calls fn(VertexRecord&) for every live vertex, in slot order.
  template <typename Fn>
  void for_each_vertex(Fn&& fn) {
    for (auto& slot : slots_) {
      if (slot != nullptr && slot->alive) fn(*slot);
    }
  }

  template <typename Fn>
  void for_each_vertex(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot != nullptr && slot->alive) fn(*slot);
    }
  }

  // ---- dense-slot access (used by level-synchronous workloads) ----

  /// Number of slots ever allocated (>= num_vertices; deleted vertices
  /// leave dead slots behind, as tombstones).
  std::size_t slot_count() const { return slots_.size(); }

  /// The vertex in a slot; nullptr for dead/tombstoned slots. Emits a
  /// topology read for the slot-table lookup.
  VertexRecord* vertex_at(SlotIndex slot) {
    trace::read(trace::MemKind::kTopology, &slots_[slot], sizeof(void*));
    VertexRecord* v = slots_[slot].get();
    if (v == nullptr) return nullptr;
    // The liveness check dereferences the record: a dependent heap read.
    trace::read(trace::MemKind::kTopology, v,
                sizeof(VertexId) + sizeof(bool));
    return v->alive ? v : nullptr;
  }
  const VertexRecord* vertex_at(SlotIndex slot) const {
    trace::read(trace::MemKind::kTopology, &slots_[slot], sizeof(void*));
    const VertexRecord* v = slots_[slot].get();
    if (v == nullptr) return nullptr;
    trace::read(trace::MemKind::kTopology, v,
                sizeof(VertexId) + sizeof(bool));
    return v->alive ? v : nullptr;
  }

  /// Slot of a live vertex id, or kInvalidSlot.
  SlotIndex slot_of(VertexId id) const;

  // ---- slot-cached target resolution (traversal fast path) ----

  /// Counter of slot-invalidating mutations. Edges stamped under the
  /// current epoch resolve their target in O(1); after the epoch moves
  /// (delete_vertex), resolution falls back to the id index and re-stamps.
  std::uint32_t mutation_epoch() const { return mutation_epoch_; }

  /// Dense slot of e's target: the cached slot when the edge's stamp is
  /// current, otherwise an id-index lookup (hash probe) that refreshes the
  /// cache. kInvalidSlot if the target no longer exists.
  SlotIndex resolve_target_slot(const EdgeRecord& e) const {
    // No PrimitiveScope on the hit path: every caller (for_each_out_edge)
    // already holds one, and the check is two relaxed loads. The slow
    // path opens its own scope for direct callers.
    const std::uint64_t cached =
        e.slot_cache.load(std::memory_order_relaxed);
    if (static_cast<std::uint32_t>(cached >> 32) == mutation_epoch_) {
      ++fwk::slot_cache_stats().hits;
      return static_cast<SlotIndex>(cached);
    }
    return resolve_target_slot_slow(e);
  }

  /// Dense slot of r's source: the in-record mirror of
  /// resolve_target_slot().
  SlotIndex resolve_source_slot(const InRecord& r) const {
    const std::uint64_t cached =
        r.slot_cache.load(std::memory_order_relaxed);
    if (static_cast<std::uint32_t>(cached >> 32) == mutation_epoch_) {
      ++fwk::slot_cache_stats().hits;
      return static_cast<SlotIndex>(cached);
    }
    return resolve_source_slot_slow(r);
  }

  /// The target vertex of e, resolved through the slot cache. Equivalent
  /// to find_vertex(e.target) but without the hash probe on the
  /// unmutated-graph path.
  const VertexRecord* resolve_target(const EdgeRecord& e) const {
    const SlotIndex slot = resolve_target_slot(e);
    return slot == kInvalidSlot ? nullptr : vertex_at(slot);
  }
  VertexRecord* resolve_target(const EdgeRecord& e) {
    const SlotIndex slot = resolve_target_slot(e);
    return slot == kInvalidSlot ? nullptr : vertex_at(slot);
  }

  // ---- statistics ----

  std::size_t num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return num_edges_; }

  /// Approximate resident bytes of the graph structure (Table 7 context).
  std::size_t footprint_bytes() const;

  void set_allow_parallel_edges(bool allow) { allow_parallel_edges_ = allow; }

  // ---- mutation log (incremental re-freeze) ----

  /// Mutations recorded since the log was last armed (by
  /// GraphSnapshot::freeze / ::refresh). Unarmed before the first freeze,
  /// so bulk graph construction pays zero recording overhead.
  const MutationLog& mutation_log() const { return mlog_; }

  /// Clears and re-arms the log at the current slot count / epoch;
  /// returns the new log serial. Const because snapshots are built from
  /// const graphs; the log is bookkeeping, not graph state.
  std::uint64_t rearm_mutation_log() const {
    return mlog_.rearm(static_cast<SlotIndex>(slots_.size()),
                       mutation_epoch_);
  }

  /// Checks internal invariants (index consistency, in/out symmetry,
  /// counts). Returns true when consistent; used by tests and debug builds.
  bool validate() const;

 private:
  VertexRecord* find_vertex_impl(VertexId id) const;
  SlotIndex find_slot_impl(VertexId id) const;
  SlotIndex resolve_target_slot_slow(const EdgeRecord& e) const;
  SlotIndex resolve_source_slot_slow(const InRecord& r) const;

  std::vector<std::unique_ptr<VertexRecord>> slots_;
  std::unordered_map<VertexId, SlotIndex> index_;
  std::size_t num_vertices_ = 0;
  std::size_t num_edges_ = 0;
  VertexId next_auto_id_ = 0;
  // Starts at 1 so the default edge stamp (epoch 0) is never current.
  std::uint32_t mutation_epoch_ = 1;
  bool allow_parallel_edges_ = false;
  // Armed lazily by the first freeze(); mutable so const freezes can rearm.
  mutable MutationLog mlog_;
};

}  // namespace graphbig::graph
