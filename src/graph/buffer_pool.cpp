#include "graph/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "obs/metrics.h"

namespace graphbig::graph {

namespace {

// Pool traffic, aggregated across every pool in the process (the
// disk-parity tests read per-pool Stats; dashboards read these).
struct PoolSeries {
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter evictions;
  obs::Counter overflow_reads;
};

PoolSeries& pool_series() {
  static PoolSeries* s = [] {
    auto& r = obs::MetricsRegistry::instance();
    return new PoolSeries{
        r.counter("diskpool.hits"),
        r.counter("diskpool.misses"),
        r.counter("diskpool.evictions"),
        r.counter("diskpool.overflow_reads"),
    };
  }();
  return *s;
}

}  // namespace

BufferPool::BufferPool(const std::uint8_t* base, std::size_t bytes,
                       const BufferPoolOptions& opts)
    : base_(base),
      bytes_(bytes),
      page_bytes_(opts.page_bytes),
      page_count_((bytes + opts.page_bytes - 1) / opts.page_bytes) {
  assert(page_bytes_ >= 64 && (page_bytes_ & (page_bytes_ - 1)) == 0);
  const std::uint32_t pages = opts.pages == 0 ? 1 : opts.pages;
  frames_.resize(pages);
  for (Frame& f : frames_) {
    f.data = std::make_unique<std::uint8_t[]>(page_bytes_);
  }
  resident_.reserve(pages);
}

std::size_t BufferPool::page_size(std::uint64_t page) const {
  const std::uint64_t off = page * page_bytes_;
  const std::uint64_t left = bytes_ - off;
  return left < page_bytes_ ? static_cast<std::size_t>(left) : page_bytes_;
}

BufferPool::PageRef& BufferPool::PageRef::operator=(PageRef&& o) noexcept {
  if (this != &o) {
    release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    overflow_ = std::move(o.overflow_);
    data_ = o.data_;
    size_ = o.size_;
    o.pool_ = nullptr;
    o.frame_ = -1;
    o.data_ = nullptr;
    o.size_ = 0;
  }
  return *this;
}

void BufferPool::PageRef::release() {
  if (pool_ != nullptr && frame_ >= 0) {
    pool_->unpin(static_cast<std::size_t>(frame_));
  }
  pool_ = nullptr;
  frame_ = -1;
  overflow_.reset();
  data_ = nullptr;
  size_ = 0;
}

void BufferPool::unpin(std::size_t frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(frames_[frame].pins > 0);
  --frames_[frame].pins;
}

BufferPool::PageRef BufferPool::pin(std::uint64_t page) {
  assert(page < page_count_);
  const std::size_t size = page_size(page);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = resident_.find(page);
    if (it != resident_.end()) {
      Frame& f = frames_[it->second];
      if (f.loading) {
        // Another reader is copying this page in; wait rather than load
        // it twice into two frames.
        load_cv_.wait(lock);
        continue;
      }
      ++f.pins;
      f.ref = true;
      ++stats_.hits;
      if (obs::enabled()) pool_series().hits.add(1);
      PageRef ref;
      ref.pool_ = this;
      ref.frame_ = static_cast<std::int64_t>(it->second);
      ref.data_ = f.data.get();
      ref.size_ = size;
      return ref;
    }

    // Miss: CLOCK sweep for an unpinned frame. Two passes — the first
    // clears second-chance bits, the second takes the first cold frame.
    std::size_t victim = frames_.size();
    for (std::size_t step = 0; step < frames_.size() * 2; ++step) {
      Frame& f = frames_[clock_hand_];
      const std::size_t at = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % frames_.size();
      if (f.pins > 0 || f.loading) continue;
      if (f.ref) {
        f.ref = false;
        continue;
      }
      victim = at;
      break;
    }
    if (victim == frames_.size()) {
      // Every frame pinned or loading: serve a transient private copy
      // instead of blocking on an eviction that cannot happen.
      ++stats_.overflow_reads;
      if (obs::enabled()) pool_series().overflow_reads.add(1);
      lock.unlock();
      PageRef ref;
      ref.overflow_ = std::make_unique<std::uint8_t[]>(size);
      std::memcpy(ref.overflow_.get(), base_ + page * page_bytes_, size);
      ref.data_ = ref.overflow_.get();
      ref.size_ = size;
      return ref;
    }

    Frame& f = frames_[victim];
    if (f.page != ~0ull) {
      resident_.erase(f.page);
      ++stats_.evictions;
      if (obs::enabled()) pool_series().evictions.add(1);
    }
    ++stats_.misses;
    if (obs::enabled()) pool_series().misses.add(1);
    f.page = page;
    f.pins = 1;
    f.ref = true;
    f.loading = true;
    resident_[page] = victim;
    lock.unlock();
    std::memcpy(f.data.get(), base_ + page * page_bytes_, size);
    lock.lock();
    f.loading = false;
    load_cv_.notify_all();
    PageRef ref;
    ref.pool_ = this;
    ref.frame_ = static_cast<std::int64_t>(victim);
    ref.data_ = f.data.get();
    ref.size_ = size;
    return ref;
  }
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace graphbig::graph
