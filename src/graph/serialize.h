// Full property-graph serialization (vertices, edges, weights, typed
// properties). The plain edge-list I/O in datagen covers topology-only
// exchange; this format round-trips everything the framework stores, so a
// populated graph (e.g. a Bayesian network with CPT properties) can be
// saved and reloaded -- the "graph store" role industrial frameworks play.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/property_graph.h"

namespace graphbig::graph {

/// Writes the graph in the text format described in serialize.cpp.
void write_graph(const PropertyGraph& graph, std::ostream& out);
void save_graph(const PropertyGraph& graph, const std::string& path);

/// Reads a graph previously written by write_graph. Throws
/// std::runtime_error on malformed input.
PropertyGraph read_graph(std::istream& in);
PropertyGraph load_graph(const std::string& path);

/// Deep structural + property equality (used by round-trip tests).
bool graphs_equal(const PropertyGraph& a, const PropertyGraph& b);

}  // namespace graphbig::graph
