// Subgraph extraction: induced subgraphs by vertex predicate and k-hop
// neighborhoods. These are the framework-level operations behind the
// paper's data-exploration and 360-degree-view use cases (Figure 4):
// clients carve a working subgraph out of the store and analyze it.
#pragma once

#include <functional>

#include "graph/property_graph.h"

namespace graphbig::graph {

/// Returns the subgraph induced by the vertices for which `keep` returns
/// true. Vertex and edge properties (and weights) are copied.
PropertyGraph induced_subgraph(
    const PropertyGraph& graph,
    const std::function<bool(const VertexRecord&)>& keep);

/// Returns the induced subgraph of all vertices within `hops` of `root`
/// following outgoing edges (root included). Empty graph if root is
/// missing.
PropertyGraph k_hop_neighborhood(const PropertyGraph& graph, VertexId root,
                                 int hops);

}  // namespace graphbig::graph
