// Text format:
//
//   graphbig-graph 1
//   vertices <count>
//   edges <count>
//   v <id> <num_props> [<prop>...]
//   e <src> <dst> <weight> <num_props> [<prop>...]
//
// where <prop> is one of
//   i <key> <int64>
//   d <key> <double>           (hex float, lossless)
//   s <key> <len> <bytes>      (raw bytes after one separating space)
//   t <key> <n> <double>*n     (probability tables etc.)
//
// Vertices are emitted in slot order, edges per source vertex, so the
// format is deterministic for a given graph.
#include "graph/serialize.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace graphbig::graph {

namespace {

void write_double(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);  // hex float: lossless
  out << buf;
}

double read_double(std::istream& in) {
  std::string token;
  if (!(in >> token)) throw std::runtime_error("graph: expected double");
  return std::strtod(token.c_str(), nullptr);
}

void write_props(std::ostream& out, const PropertyMap& props) {
  out << ' ' << props.size();
  props.for_each([&](PropKey key, const PropertyValue& value) {
    if (const auto* i = std::get_if<std::int64_t>(&value)) {
      out << " i " << key << ' ' << *i;
    } else if (const auto* d = std::get_if<double>(&value)) {
      out << " d " << key << ' ';
      write_double(out, *d);
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      out << " s " << key << ' ' << s->size() << ' ' << *s;
    } else if (const auto* t = std::get_if<std::vector<double>>(&value)) {
      out << " t " << key << ' ' << t->size();
      for (const double x : *t) {
        out << ' ';
        write_double(out, x);
      }
    }
  });
}

void read_props(std::istream& in, PropertyMap& props) {
  std::size_t count = 0;
  if (!(in >> count)) throw std::runtime_error("graph: expected prop count");
  for (std::size_t p = 0; p < count; ++p) {
    char type = 0;
    PropKey key = 0;
    if (!(in >> type >> key)) {
      throw std::runtime_error("graph: expected property header");
    }
    switch (type) {
      case 'i': {
        std::int64_t v = 0;
        if (!(in >> v)) throw std::runtime_error("graph: bad int prop");
        props.set(key, PropertyValue{v});
        break;
      }
      case 'd': {
        props.set(key, PropertyValue{read_double(in)});
        break;
      }
      case 's': {
        std::size_t len = 0;
        if (!(in >> len)) throw std::runtime_error("graph: bad str len");
        in.get();  // the single separating space
        std::string s(len, '\0');
        in.read(s.data(), static_cast<std::streamsize>(len));
        if (in.gcount() != static_cast<std::streamsize>(len)) {
          throw std::runtime_error("graph: truncated string prop");
        }
        props.set(key, PropertyValue{std::move(s)});
        break;
      }
      case 't': {
        std::size_t n = 0;
        if (!(in >> n)) throw std::runtime_error("graph: bad table len");
        std::vector<double> table(n);
        for (auto& x : table) x = read_double(in);
        props.set(key, PropertyValue{std::move(table)});
        break;
      }
      default:
        throw std::runtime_error("graph: unknown property type");
    }
  }
}

}  // namespace

void write_graph(const PropertyGraph& graph, std::ostream& out) {
  out << "graphbig-graph 1\n";
  out << "vertices " << graph.num_vertices() << '\n';
  out << "edges " << graph.num_edges() << '\n';
  graph.for_each_vertex([&](const VertexRecord& v) {
    out << "v " << v.id;
    write_props(out, v.props);
    out << '\n';
  });
  graph.for_each_vertex([&](const VertexRecord& v) {
    for (const EdgeRecord& e : v.out) {
      out << "e " << v.id << ' ' << e.target << ' ';
      write_double(out, e.weight);
      write_props(out, e.props);
      out << '\n';
    }
  });
}

void save_graph(const PropertyGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_graph(graph, out);
}

PropertyGraph read_graph(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "graphbig-graph" ||
      version != 1) {
    throw std::runtime_error("graph: bad header");
  }
  std::string word;
  std::size_t num_vertices = 0, num_edges = 0;
  if (!(in >> word >> num_vertices) || word != "vertices") {
    throw std::runtime_error("graph: bad vertex count");
  }
  if (!(in >> word >> num_edges) || word != "edges") {
    throw std::runtime_error("graph: bad edge count");
  }

  PropertyGraph g;
  g.reserve(num_vertices);
  g.set_allow_parallel_edges(true);  // writer emitted a valid edge set
  char tag = 0;
  while (in >> tag) {
    if (tag == 'v') {
      VertexId id = 0;
      if (!(in >> id)) throw std::runtime_error("graph: bad vertex id");
      VertexRecord* v = g.add_vertex(id);
      if (v == nullptr) throw std::runtime_error("graph: duplicate vertex");
      read_props(in, v->props);
    } else if (tag == 'e') {
      VertexId src = 0, dst = 0;
      if (!(in >> src >> dst)) {
        throw std::runtime_error("graph: bad edge endpoints");
      }
      const double weight = read_double(in);
      EdgeRecord* e = g.add_edge(src, dst, weight);
      if (e == nullptr) throw std::runtime_error("graph: bad edge");
      read_props(in, e->props);
    } else {
      throw std::runtime_error("graph: unknown record tag");
    }
  }
  g.set_allow_parallel_edges(false);
  if (g.num_vertices() != num_vertices || g.num_edges() != num_edges) {
    throw std::runtime_error("graph: count mismatch");
  }
  return g;
}

PropertyGraph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read_graph(in);
}

bool graphs_equal(const PropertyGraph& a, const PropertyGraph& b) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_edges() != b.num_edges()) {
    return false;
  }
  // Serialize both and compare: the writer is deterministic in slot
  // order, but the two graphs may have different slot orders, so compare
  // per-vertex through lookups instead.
  bool equal = true;
  a.for_each_vertex([&](const VertexRecord& va) {
    const VertexRecord* vb = b.find_vertex(va.id);
    if (vb == nullptr || va.props.size() != vb->props.size() ||
        va.out.size() != vb->out.size()) {
      equal = false;
      return;
    }
    va.props.for_each([&](PropKey key, const PropertyValue& value) {
      const PropertyValue* other = vb->props.get(key);
      if (other == nullptr || !(*other == value)) equal = false;
    });
    for (const EdgeRecord& ea : va.out) {
      const EdgeRecord* eb = b.find_edge(va.id, ea.target);
      if (eb == nullptr || eb->weight != ea.weight ||
          eb->props.size() != ea.props.size()) {
        equal = false;
        return;
      }
      ea.props.for_each([&](PropKey key, const PropertyValue& value) {
        const PropertyValue* other = eb->props.get(key);
        if (other == nullptr || !(*other == value)) equal = false;
      });
    }
  });
  return equal;
}

}  // namespace graphbig::graph
