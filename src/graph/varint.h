// Order-preserving delta-varint codec for snapshot adjacency rows.
//
// A row's neighbor sequence is stored as zigzag-encoded deltas between
// consecutive values, each delta LEB128-varint packed (7 payload bits per
// byte, high bit = continuation). The running predecessor starts at 0, so
// the first value is encoded as a delta from 0. Zigzag keeps the scheme
// order-preserving: rows do NOT have to be sorted, which is what keeps the
// per-vertex edge order — and with it DFS's visit-order checksum and
// dynamic-vs-frozen edge-order parity — bit-identical. Sorted natural rows
// (datagen canonicalizes edge lists ascending) still produce small
// positive deltas and compress well; reordered or churned rows merely
// compress less, never incorrectly.
//
// Encoded row layout (no length header; the row's degree comes from the
// snapshot's prefix array):
//
//   value[0]          value[1]                 value[deg-1]
//   +--------------+  +-------------------+    +---------+
//   | vint(zz(d0)) |  | vint(zz(d1))      | .. | ...     |
//   +--------------+  +-------------------+    +---------+
//   d0 = v0 - 0        d1 = v1 - v0             zz = zigzag
//
// Decoding is strictly sequential via RowDecoder — a zero-allocation
// streaming cursor the snapshot's for_each_* templates drive once per
// edge.
#pragma once

#include <cstddef>
#include <cstdint>

namespace graphbig::graph::varint {

inline constexpr std::size_t kMaxEncodedBytes = 10;  // 64 payload bits / 7

inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1);
}

inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline std::uint8_t* varint_encode(std::uint8_t* out, std::uint64_t v) {
  while (v >= 0x80) {
    *out++ = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *out++ = static_cast<std::uint8_t>(v);
  return out;
}

inline const std::uint8_t* varint_decode(const std::uint8_t* in,
                                         std::uint64_t* v) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    const std::uint8_t b = *in++;
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *v = value;
  return in;
}

/// Encoded size of a row without materializing it.
template <typename T>
std::size_t encoded_row_size(const T* values, std::size_t count) {
  std::size_t bytes = 0;
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<std::int64_t>(values[i]);
    bytes += varint_size(zigzag_encode(v - prev));
    prev = v;
  }
  return bytes;
}

/// Encodes a row into `out` (which must hold encoded_row_size bytes);
/// returns one past the last byte written.
template <typename T>
std::uint8_t* encode_row(std::uint8_t* out, const T* values,
                         std::size_t count) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<std::int64_t>(values[i]);
    out = varint_encode(out, zigzag_encode(v - prev));
    prev = v;
  }
  return out;
}

/// Streaming row cursor: next() yields the original values in order. The
/// caller knows the count (snapshot degree); reading past it is undefined.
/// cursor() exposes the byte position so traversal tracing can price the
/// bytes actually touched.
class RowDecoder {
 public:
  explicit RowDecoder(const std::uint8_t* encoded) : p_(encoded) {}

  std::uint64_t next() {
    std::uint64_t z;
    p_ = varint_decode(p_, &z);
    prev_ += zigzag_decode(z);
    return static_cast<std::uint64_t>(prev_);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next()); }

  const std::uint8_t* cursor() const { return p_; }

 private:
  const std::uint8_t* p_;
  std::int64_t prev_ = 0;
};

/// Per-row fallback policy: a row stays raw when it is hot (degree at or
/// past `hot_row_degree` — hub rows are scanned constantly and decode-free
/// access wins) or when encoding would not actually shrink it.
inline bool keep_row_raw(std::uint64_t degree, std::size_t encoded_bytes,
                         std::uint32_t hot_row_degree) {
  if (degree >= hot_row_degree) return true;
  return encoded_bytes >= degree * sizeof(std::uint32_t);
}

}  // namespace graphbig::graph::varint
