// Out-of-core read-only graph backend over a graphbig.snap.v1 file.
//
// DiskGraph mmaps a serialized snapshot and serves the same traversal
// surface as GraphSnapshot, but edge payloads (raw adjacency, weights,
// encoded-row blobs) are never resident wholesale: every payload byte is
// read through a fixed-size BufferPool, so the memory ceiling is
// pool_pages * page_bytes regardless of graph size. The O(rows) control
// sections — degree prefixes, row-offset locators, id map — stay mapped
// directly (they are the working set every traversal touches anyway).
//
// The format's per-row offset tables make this layout-agnostic: a row's
// storage is located by an offset into its payload section, never by the
// placement policy that put it there, so degree/RCM-reordered and
// compressed snapshots page identically to natural ones. Section offsets
// are 64-byte aligned and pages are a power of two >= 64, so 4- and
// 8-byte elements never straddle a page boundary.
//
// Opening validates the header, section table, and every structural
// invariant of the resident sections (throws snap::SnapError naming the
// section) — O(rows), no payload read. Payload integrity is checked by
// `graphbig_snap --validate`, which does read everything.
//
// Thread safety: all traversal is const and goes through the pool's
// internal lock; concurrent readers share one DiskGraph. A traversal
// holds at most two pins at a time (neighbor + weight stream), the bound
// the pool's overflow fallback is sized against. Property columns carry
// the same concurrency contract as the frozen path.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>

#include "graph/buffer_pool.h"
#include "graph/snap_format.h"
#include "graph/varint.h"
#include "trace/access.h"

namespace graphbig::graph {

struct DiskGraphOptions {
  /// Buffer-pool budget: pages resident at once.
  std::uint32_t pool_pages = 64;
  /// Page width (power of two, >= 64).
  std::uint32_t page_bytes = 1 << 16;
};

class DiskGraph {
 public:
  /// Opens, mmaps, and structurally validates `path`. Throws
  /// snap::SnapError on open/map failure or any validation failure.
  explicit DiskGraph(const std::string& path,
                     const DiskGraphOptions& opts = {});
  ~DiskGraph();

  DiskGraph(const DiskGraph&) = delete;
  DiskGraph& operator=(const DiskGraph&) = delete;

  std::uint32_t num_vertices() const { return info_.num_vertices; }
  std::uint64_t num_edges() const { return info_.num_edges; }
  std::uint32_t row_count() const { return info_.row_count; }

  bool is_live(std::uint32_t v) const {
    return orig_id_[v] != kInvalidVertex;
  }
  VertexId id_of(std::uint32_t v) const { return orig_id_[v]; }
  SlotIndex slot_of(VertexId id) const {
    auto it = index_.find(id);
    return it == index_.end() ? kInvalidSlot : it->second;
  }

  std::uint64_t out_degree(std::uint32_t v) const {
    return out_ptr_[v + 1] - out_ptr_[v];
  }
  std::uint64_t in_degree(std::uint32_t v) const {
    return in_ptr_[v + 1] - in_ptr_[v];
  }

  /// Logical degree-prefix arrays (mmap-resident) — the engine's chunking
  /// and direction heuristics read these exactly as on the frozen path.
  const std::uint64_t* out_ptr() const { return out_ptr_; }
  const std::uint64_t* in_ptr() const { return in_ptr_; }
  const VertexId* orig_id() const { return orig_id_; }

  /// Calls fn(target row, weight) per out-edge of v, in stored order,
  /// streaming the payload through the buffer pool.
  template <typename Fn>
  void for_each_out(std::uint32_t v, Fn&& fn) const {
    for_each_out_until(v, [&](std::uint32_t t, double w) {
      fn(t, w);
      return true;
    });
  }

  template <typename Fn>
  void for_each_in(std::uint32_t v, Fn&& fn) const {
    for_each_in_until(v, [&](std::uint32_t s) {
      fn(s);
      return true;
    });
  }

  /// Early-terminating variants: fn returns bool, false stops.
  template <typename Fn>
  void for_each_out_until(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t deg = out_ptr_[v + 1] - out_ptr_[v];
    if (deg == 0) return;
    PagedReader w(*pool_, wsec_off_ + wrow_off_[v] * sizeof(double));
    const std::uint64_t off = out_off_[v];
    if ((off & snap::kEncodedRowBit) != 0) {
      PagedReader enc(*pool_, oenc_off_ + (off & ~snap::kEncodedRowBit));
      std::int64_t prev = 0;
      for (std::uint64_t e = 0; e < deg; ++e) {
        const std::size_t b0 = enc.consumed();
        prev += varint::zigzag_decode(read_varint(enc));
        trace::read(trace::MemKind::kTopology, enc.last_addr(),
                    static_cast<std::uint32_t>(enc.consumed() - b0) +
                        sizeof(double));
        trace::branch(trace::kBranchLoopCond, true);
        if (!fn(static_cast<std::uint32_t>(prev), w.next<double>())) return;
      }
      return;
    }
    PagedReader dst(*pool_, odst_off_ + off * sizeof(std::uint32_t));
    for (std::uint64_t e = 0; e < deg; ++e) {
      const std::uint32_t t = dst.next<std::uint32_t>();
      trace::read(trace::MemKind::kTopology, dst.last_addr(),
                  sizeof(std::uint32_t) + sizeof(double));
      trace::branch(trace::kBranchLoopCond, true);
      if (!fn(t, w.next<double>())) return;
    }
  }

  template <typename Fn>
  void for_each_in_until(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t deg = in_ptr_[v + 1] - in_ptr_[v];
    if (deg == 0) return;
    const std::uint64_t off = in_off_[v];
    if ((off & snap::kEncodedRowBit) != 0) {
      PagedReader enc(*pool_, ienc_off_ + (off & ~snap::kEncodedRowBit));
      std::int64_t prev = 0;
      for (std::uint64_t e = 0; e < deg; ++e) {
        const std::size_t b0 = enc.consumed();
        prev += varint::zigzag_decode(read_varint(enc));
        trace::read(trace::MemKind::kTopology, enc.last_addr(),
                    static_cast<std::uint32_t>(enc.consumed() - b0));
        trace::branch(trace::kBranchLoopCond, true);
        if (!fn(static_cast<std::uint32_t>(prev))) return;
      }
      return;
    }
    PagedReader src(*pool_, isrc_off_ + off * sizeof(std::uint32_t));
    for (std::uint64_t e = 0; e < deg; ++e) {
      const std::uint32_t s = src.next<std::uint32_t>();
      trace::read(trace::MemKind::kTopology, src.last_addr(),
                  sizeof(std::uint32_t));
      trace::branch(trace::kBranchLoopCond, true);
      if (!fn(s)) return;
    }
  }

  /// Mutable algorithm-state columns, same contract as the frozen path.
  PropertyColumns& columns() const { return *columns_; }
  void reset_columns();

  const LayoutOptions& layout() const { return layout_; }
  const snap::SnapInfo& info() const { return info_; }
  BufferPool& pool() const { return *pool_; }
  const std::string& path() const { return path_; }

 private:
  /// Sequential element stream over the pooled file image. Holds one pin
  /// (the page under the cursor); advancing across a boundary swaps it.
  class PagedReader {
   public:
    PagedReader(BufferPool& pool, std::uint64_t file_off)
        : pool_(pool), off_(file_off) {}

    template <typename T>
    T next() {
      const std::uint32_t pb = pool_.page_bytes();
      const std::uint64_t page = off_ / pb;
      if (page != page_no_) {
        ref_ = pool_.pin(page);
        page_no_ = page;
      }
      T v;
      last_ = ref_.data() + off_ % pb;
      std::memcpy(&v, last_, sizeof(T));
      off_ += sizeof(T);
      ++consumed_;
      return v;
    }

    /// Frame address of the element next() just produced (trace pricing).
    const std::uint8_t* last_addr() const { return last_; }
    /// next() calls so far — byte count for byte streams.
    std::size_t consumed() const { return consumed_; }

   private:
    BufferPool& pool_;
    std::uint64_t off_;
    std::uint64_t page_no_ = ~0ull;
    BufferPool::PageRef ref_;
    const std::uint8_t* last_ = nullptr;
    std::size_t consumed_ = 0;
  };

  /// LEB128 varint off a pooled byte stream (mirrors varint_decode).
  static std::uint64_t read_varint(PagedReader& r) {
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
      const auto b = r.next<std::uint8_t>();
      value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return value;
      shift += 7;
    }
  }

  std::string path_;
  int fd_ = -1;
  const std::uint8_t* map_ = nullptr;
  std::size_t map_bytes_ = 0;

  snap::SnapInfo info_;
  LayoutOptions layout_;

  // Mmap-resident control sections.
  const std::uint64_t* out_ptr_ = nullptr;
  const std::uint64_t* in_ptr_ = nullptr;
  const VertexId* orig_id_ = nullptr;
  const std::uint64_t* out_off_ = nullptr;
  const std::uint64_t* wrow_off_ = nullptr;
  const std::uint64_t* in_off_ = nullptr;

  // Payload section base offsets (file-relative), read via the pool.
  std::uint64_t odst_off_ = 0;
  std::uint64_t wsec_off_ = 0;
  std::uint64_t isrc_off_ = 0;
  std::uint64_t oenc_off_ = 0;
  std::uint64_t ienc_off_ = 0;

  std::unordered_map<VertexId, SlotIndex> index_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<PropertyColumns> columns_;
};

}  // namespace graphbig::graph
