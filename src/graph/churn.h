// Seeded random mutation driver for GUp/TMorph-style churn phases.
//
// The paper's dynamic computation type exists because industrial graphs
// mutate continuously; ChurnDriver generates reproducible interleavings of
// vertex/edge adds and deletes against a PropertyGraph, recording every
// concrete operation it applied. The recorded batch can be replayed
// verbatim into a second graph (the churn-parity harness's twin-graph
// oracle: freeze(twin) must structurally equal refresh(primary)) and
// printed on failure as an actionable repro (seed + op list).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/property_graph.h"
#include "platform/rng.h"

namespace graphbig::graph {

/// One concrete mutation. `a`/`b` are external vertex ids.
struct ChurnOp {
  enum class Kind : std::uint8_t {
    kAddVertex,    // add vertex a
    kAddEdge,      // add edge a -> b with `weight`
    kDeleteEdge,   // delete edge a -> b
    kDeleteVertex  // delete vertex a (and every incident edge)
  };
  Kind kind = Kind::kAddVertex;
  VertexId a = 0;
  VertexId b = 0;
  double weight = 1.0;
};

const char* to_string(ChurnOp::Kind kind);

/// Mutation mix. Weights need not sum to 1; they are normalized.
struct ChurnConfig {
  std::uint64_t seed = 1;
  std::size_t ops = 256;  // operations per batch
  double add_vertex_weight = 0.15;
  double add_edge_weight = 0.55;
  double delete_edge_weight = 0.20;
  double delete_vertex_weight = 0.10;
};

/// The ops one apply_batch() call generated, plus apply outcomes.
struct ChurnBatch {
  /// Position of this batch in the driver's stream (0, 1, 2, ...). The
  /// per-batch RNG is derived from (seed, serial), so a recorded serial
  /// pins the batch to an exact op sequence for replay/verification.
  std::uint64_t serial = 0;
  std::vector<ChurnOp> ops;
  std::size_t applied = 0;  // ops the graph accepted
  std::size_t skipped = 0;  // refused (duplicate edge, missing endpoint)

  /// Human-readable op list for failure reports (capped, with a tail
  /// count, so a fuzz failure stays pasteable).
  std::string describe(std::size_t max_ops = 64) const;
};

/// Deterministic churn generator. Maintains a live-id mirror of the graph
/// so op generation never scans the graph (except the bounded delete-edge
/// probe), and draws each batch from its OWN split RNG stream seeded by
/// SplitMix64 over (seed, batch serial): the op sequence of batch k
/// depends only on the seed, the serial k, and the graph state after
/// batches 0..k-1 — never on wall-clock timing or on how many RNG draws
/// earlier batches happened to make. Same seed + batches consumed in
/// serial order => same op stream, which is what makes serve runs (writer
/// thread pacing batches under load) replayable after the fact.
class ChurnDriver {
 public:
  ChurnDriver(const ChurnConfig& config, const PropertyGraph& g);

  /// Generates and applies config.ops mutations to g, returning the
  /// concrete batch (stamped with the next stream serial). g must be the
  /// graph the driver was constructed against (or an identical twin that
  /// has replayed all prior batches).
  ChurnBatch apply_batch(PropertyGraph& g);

  std::uint64_t seed() const { return config_.seed; }

  /// Serial the next apply_batch() call will stamp.
  std::uint64_t next_serial() const { return next_serial_; }

 private:
  void track_add(VertexId id);
  void track_remove(VertexId id);

  ChurnConfig config_;
  std::uint64_t next_serial_ = 0;
  std::vector<VertexId> live_;
  std::unordered_map<VertexId, std::size_t> pos_;
  VertexId next_id_ = 0;
};

/// Replays a recorded batch into a twin graph. Returns the number of ops
/// the twin accepted — equal to batch.applied when the twin is in sync.
std::size_t replay_batch(const ChurnBatch& batch, PropertyGraph& g);

}  // namespace graphbig::graph
