// Topology statistics used by the dataset tables (Table 5/7) and by tests
// that check the generators reproduce each data source's published features
// (Table 2): degree variance, connected-component structure, path lengths.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace graphbig::graph {

struct DegreeStats {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double variance = 0.0;
  /// Coefficient of variation (stddev / mean); >1 indicates a heavy tail.
  double cv = 0.0;
  /// Fraction of edges owned by the top 1% highest-degree vertices.
  double top1pct_edge_share = 0.0;
};

DegreeStats degree_stats(const Csr& csr);

/// Number of weakly connected components and size of the largest one.
struct ComponentStats {
  std::size_t num_components = 0;
  std::size_t largest = 0;
};

ComponentStats component_stats(const Csr& csr);

/// Mean shortest-path length (in hops) estimated by BFS from `samples`
/// random sources, restricted to reached vertices.
double estimate_mean_path_length(const Csr& csr, int samples,
                                 std::uint64_t seed);

/// Average two-hop neighbourhood size from `samples` random sources
/// (the "large two-hop neighbourhood" feature of information networks).
double estimate_two_hop_size(const Csr& csr, int samples, std::uint64_t seed);

/// Full degree histogram (index = degree, clamped at max_degree).
std::vector<std::uint64_t> degree_histogram(const Csr& csr,
                                            std::uint64_t max_degree);

}  // namespace graphbig::graph
