// Property system for the property-graph model.
//
// Industrial graph frameworks (System G, GraphLab, Neo4j, ...) attach
// user-defined properties to every vertex and edge: meta-data, algorithm
// state, or complex payloads such as conditional probability tables
// (Section 2 of the paper). This module provides the typed value and the
// per-element property map used by the framework.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "trace/access.h"

namespace graphbig::graph {

/// Property keys are small integers; workloads declare their keys in a
/// shared enum-like namespace. Using interned integer keys instead of
/// strings keeps primitive costs dominated by memory behavior, as in the
/// paper's framework, rather than by string hashing.
using PropKey = std::uint32_t;

/// Typed property value. The alternatives cover the paper's three payload
/// classes: meta-data (string), program state (int64/double), and
/// probability tables (vector<double>, used by the Bayesian workloads).
using PropertyValue =
    std::variant<std::int64_t, double, std::string, std::vector<double>>;

/// A small flat map from PropKey to PropertyValue.
///
/// Real vertices carry only a handful of properties, so linear probing over
/// a contiguous vector beats any node-based map, and -- importantly for the
/// characterization -- keeps the property payload adjacent to the owning
/// vertex record, which is what produces the "computation on properties is
/// cache-friendlier" behavior in Figure 7.
class PropertyMap {
 public:
  /// Sets (inserts or overwrites) a property. Emits property-write trace
  /// events.
  void set(PropKey key, PropertyValue value);

  /// Returns the value or nullptr. Emits property-read trace events.
  const PropertyValue* get(PropKey key) const;
  PropertyValue* get_mutable(PropKey key);

  /// Typed accessors; return fallback when absent or of the wrong type.
  std::int64_t get_int(PropKey key, std::int64_t fallback = 0) const;
  double get_double(PropKey key, double fallback = 0.0) const;

  /// Fast-path numeric update: common case for algorithm state (BFS depth,
  /// distance, color). Creates the entry when missing.
  void set_int(PropKey key, std::int64_t v);
  void set_double(PropKey key, double v);

  bool erase(PropKey key);
  bool contains(PropKey key) const { return find(key) != nullptr; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Approximate heap footprint in bytes (for memory accounting).
  std::size_t footprint_bytes() const;

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& e : entries_) fn(e.key, e.value);
  }

 private:
  struct Entry {
    PropKey key;
    PropertyValue value;
  };

  const Entry* find(PropKey key) const;
  Entry* find(PropKey key);

  std::vector<Entry> entries_;
};

}  // namespace graphbig::graph
