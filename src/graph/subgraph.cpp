#include "graph/subgraph.h"

#include <queue>
#include <unordered_set>

namespace graphbig::graph {

PropertyGraph induced_subgraph(
    const PropertyGraph& graph,
    const std::function<bool(const VertexRecord&)>& keep) {
  PropertyGraph out;
  // Pass 1: vertices (with properties).
  graph.for_each_vertex([&](const VertexRecord& v) {
    if (!keep(v)) return;
    VertexRecord* copy = out.add_vertex(v.id);
    copy->props = v.props;
  });
  // Pass 2: edges whose endpoints both survived.
  graph.for_each_vertex([&](const VertexRecord& v) {
    if (out.find_vertex(v.id) == nullptr) return;
    for (const EdgeRecord& e : v.out) {
      if (out.find_vertex(e.target) == nullptr) continue;
      EdgeRecord* copy = out.add_edge(v.id, e.target, e.weight);
      if (copy != nullptr) copy->props = e.props;
    }
  });
  return out;
}

PropertyGraph k_hop_neighborhood(const PropertyGraph& graph, VertexId root,
                                 int hops) {
  std::unordered_set<VertexId> within;
  if (graph.find_vertex(root) != nullptr) {
    std::queue<std::pair<VertexId, int>> frontier;
    frontier.emplace(root, 0);
    within.insert(root);
    while (!frontier.empty()) {
      const auto [vid, depth] = frontier.front();
      frontier.pop();
      if (depth >= hops) continue;
      const VertexRecord* v = graph.find_vertex(vid);
      for (const EdgeRecord& e : v->out) {
        if (within.insert(e.target).second) {
          frontier.emplace(e.target, depth + 1);
        }
      }
    }
  }
  return induced_subgraph(graph, [&](const VertexRecord& v) {
    return within.count(v.id) > 0;
  });
}

}  // namespace graphbig::graph
